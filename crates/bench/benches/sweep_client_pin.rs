//! **X11**: browser DNS pinning vs adaptive TTL. Clients that pin
//! resolved addresses for a fixed duration (as classic browsers did for
//! DNS-rebinding defence) silently override the DNS's carefully chosen
//! TTLs. How long a pin does it take to erase the adaptive advantage?

use geodns_bench::{apply_mode, flatten_series, print_p98_series, run_experiment, save_json};
use geodns_core::{Algorithm, ClientCacheModel, Experiment, SimConfig};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn main() {
    let algorithms = [
        Algorithm::drr2_ttl_s_k(),
        Algorithm::prr2_ttl_k(),
        Algorithm::prr2_ttl(2),
        Algorithm::rr(),
    ];
    let names: Vec<String> = algorithms.iter().map(Algorithm::name).collect();

    let pins: [(&str, ClientCacheModel); 5] = [
        ("0", ClientCacheModel::Off),
        ("60", ClientCacheModel::Pin { pin_s: 60.0 }),
        ("240", ClientCacheModel::Pin { pin_s: 240.0 }),
        ("900", ClientCacheModel::Pin { pin_s: 900.0 }),
        ("1800", ClientCacheModel::Pin { pin_s: 1800.0 }),
    ];

    let mut points = Vec::new();
    for (label, cache) in pins {
        let mut e = Experiment::new(format!("sweep_client_pin@{label}"));
        for algorithm in algorithms {
            let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
            cfg.seed = SEED;
            cfg.client_cache = cache;
            apply_mode(&mut cfg);
            e.push(algorithm.name(), cfg);
        }
        points.push((label.to_string(), run_experiment(&e)));
    }

    print_p98_series(
        "X11: Browser DNS pinning (seconds) vs adaptive TTL (heterogeneity 35%)",
        "client pin duration, seconds (0 = no client cache)",
        &names,
        &points,
    );
    println!(
        "reading: pinning *fragments* the hidden load. Without a client cache, every\n\
         client of a domain follows the NS's single current mapping — the domain's whole\n\
         load moves as one chunk, which is exactly the skew adaptive TTL fights. A pinned\n\
         client keeps its own older binding, so a hot domain's clients spread across the\n\
         servers they resolved at different instants: per-client granularity instead of\n\
         per-domain granularity. That helps even RR. The flip side (not visible under a\n\
         stationary workload) is staleness: pinned clients ignore the DNS for the whole\n\
         pin, so reaction to server trouble or load shifts slows by the pin length —\n\
         combine with dynamic_workload's profiles to see that cost."
    );
    save_json("sweep_client_pin", &flatten_series(&points));
}
