//! Worker×core scaling wall-chart for the `geodnsd` wire path: answers/s
//! over a real loopback daemon at 1/2/4/8 workers, pinned vs unpinned,
//! in the best transport the kernel grants (uring where available,
//! batched otherwise).
//!
//! What the chart answers: does the per-worker `SO_REUSEPORT` +
//! one-enter-per-round design actually *scale* when cores are added, and
//! how much of that scaling is real parallelism vs scheduler placement
//! luck? The pinned rows place worker `i` on core `i mod online_cpus`
//! (and the closed-loop clients on the remaining cores when there are
//! enough); the unpinned rows are the control — on a many-core box the
//! gap between them is migration noise, and on a one-core box the whole
//! chart is flat by construction (every worker shares the core, so added
//! workers only add contention).
//!
//! Modes:
//!
//! * default — full measurement (3 s per cell, best of 2);
//! * `GEODNS_QUICK=1` / `--quick` — 1 s per cell for CI smoke;
//! * `--check` — gate the chart against the `scaling` section of the
//!   checked-in `BENCH_wire.json`: at every measured worker count the
//!   throughput must stay above `gate_min_ratio` × the 1-worker number.
//!   The floor is deliberately a *collapse* detector, not a scaling
//!   claim: the committed baseline comes from a single-core box where
//!   the ideal curve is flat and contention can only push it down, so
//!   the gate fails when adding workers destroys throughput (lock
//!   convoying, ring thrashing), never when a small box fails to show
//!   a big box's speedup.
//!
//! The full grid is persisted to `target/paper/scaling_wire.json`; the
//! committed `BENCH_wire.json` section is a hand-promoted snapshot of a
//! reference run plus the gate floor.

use std::net::UdpSocket;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use geodns_bench::{output_dir, quick_mode};
use geodns_core::format_table;
use geodns_wire::mmsg::{self, RecvBatch, SendBatch};
use geodns_wire::{affinity, AuthoritativeServer, Daemon, DaemonConfig, IoMode, Message, Question};

const WORKER_GRID: [usize; 4] = [1, 2, 4, 8];
const CLIENTS: usize = 4;
const WINDOW: usize = 32;

/// One cell of the wall-chart: answers/s through a fresh daemon with
/// `workers` threads (pinned to cores 0.. when `pin`) under a fixed
/// closed-loop client load. Client threads are pinned to the cores
/// *after* the workers' range when pinning and the box has room —
/// otherwise they float, which on a saturated small box is the honest
/// configuration anyway.
fn bench_cell(io_mode: IoMode, workers: usize, pin: bool, secs: f64) -> f64 {
    let shards = (0..workers).map(|w| AuthoritativeServer::example_shard(w as u64, 7)).collect();
    let mut cfg = DaemonConfig::new("127.0.0.1:0".parse().expect("valid addr"));
    cfg.io_mode = io_mode;
    cfg.pin = pin.then_some(0);
    let daemon = Daemon::spawn(&cfg, shards).expect("daemon spawns");
    let target = daemon.local_addr();
    let online = affinity::online_cpus().max(1);

    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs_f64(secs);
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                if pin && online > workers {
                    let _ = affinity::pin_to_core(workers + (c % (online - workers)));
                }
                let socket = UdpSocket::bind("127.0.0.1:0").expect("client bind");
                socket.connect(target).expect("connect");
                socket.set_read_timeout(Some(Duration::from_secs(1))).expect("timeout");
                let query = Message::query(0, Question::a("www.example.org")).to_bytes();
                let mut tx = SendBatch::new(WINDOW, 512);
                let mut rx = RecvBatch::new(WINDOW, 512);
                let mut answered = 0u64;
                let mut id = (c as u16) << 10;
                while Instant::now() < deadline {
                    for _ in 0..WINDOW {
                        id = id.wrapping_add(1);
                        let buf = tx.buffer();
                        buf.extend_from_slice(&query);
                        buf[0..2].copy_from_slice(&id.to_be_bytes());
                        tx.commit(target);
                    }
                    mmsg::send_batch(&socket, &mut tx);
                    let mut got = 0;
                    while got < WINDOW {
                        match mmsg::recv_batch(&socket, &mut rx) {
                            Ok(n) => {
                                answered += n as u64;
                                got += n;
                            }
                            // Timeout re-sends the burst; the loop stays
                            // closed and lost datagrams just cost time.
                            Err(_) => break,
                        }
                    }
                }
                answered
            })
        })
        .collect();
    let answered: u64 = threads.into_iter().map(|t| t.join().expect("client panicked")).sum();
    let elapsed = t0.elapsed().as_secs_f64();
    let _ = daemon.shutdown();
    answered as f64 / elapsed
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Applies the collapse gate: every pinned cell must hold
/// `gate_min_ratio` × the pinned 1-worker cell.
fn check_against_baseline(pinned: &[(usize, f64)]) {
    let path = repo_root().join("BENCH_wire.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("--check: cannot read {}: {e}", path.display()));
    let baseline: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("--check: bad baseline JSON: {e}"));
    let floor =
        baseline["scaling"]["gate_min_ratio"].as_f64().expect("baseline scaling.gate_min_ratio");

    let base = pinned.first().map_or(0.0, |&(_, qps)| qps);
    assert!(base > 0.0, "1-worker cell measured zero throughput");
    let mut ok = true;
    for &(workers, qps) in &pinned[1..] {
        let ratio = qps / base;
        eprintln!(
            "check scaling {workers} workers: {ratio:.2}x the 1-worker throughput \
             (floor {floor:.2}x)"
        );
        if ratio < floor {
            eprintln!("scaling_wire: {workers}-worker throughput collapsed below the floor");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    eprintln!("scaling_wire: all worker counts hold the BENCH_wire.json collapse floor");
}

fn main() {
    let quick = quick_mode();
    let check = std::env::args().any(|a| a == "--check");
    let secs = if quick { 1.0 } else { 3.0 };
    let io_mode = if geodns_wire::uring::supported() { IoMode::Uring } else { IoMode::default() };
    let online = affinity::online_cpus().max(1);

    eprintln!(
        "[scaling_wire] {CLIENTS} clients x window {WINDOW}, io={io_mode}, {online} online \
         cpus, 2 x {secs:.0} s per cell{}",
        if quick { " (quick mode)" } else { "" }
    );

    let mut cells: Vec<(usize, bool, f64)> = Vec::new();
    for &workers in &WORKER_GRID {
        for pin in [false, true] {
            let qps = bench_cell(io_mode, workers, pin, secs)
                .max(bench_cell(io_mode, workers, pin, secs));
            eprintln!(
                "[scaling_wire] {workers} workers, {}: {qps:.0} answers/s",
                if pin { "pinned" } else { "unpinned" }
            );
            cells.push((workers, pin, qps));
        }
    }

    let base =
        cells.iter().find(|&&(w, pin, _)| w == 1 && pin).map_or(f64::NAN, |&(_, _, qps)| qps);
    let rows: Vec<Vec<String>> = WORKER_GRID
        .iter()
        .map(|&w| {
            let at = |want_pin: bool| {
                cells
                    .iter()
                    .find(|&&(cw, pin, _)| cw == w && pin == want_pin)
                    .map_or(f64::NAN, |&(_, _, qps)| qps)
            };
            vec![
                format!("{w}"),
                format!("{:.0}", at(false)),
                format!("{:.0}", at(true)),
                format!("{:.2}x", at(true) / base),
            ]
        })
        .collect();
    println!("\nworker x core scaling, answers/sec ({io_mode} io, {online} online cpus)\n");
    println!(
        "{}",
        format_table(&["workers", "unpinned qps", "pinned qps", "pinned vs 1-worker"], &rows)
    );

    let json = serde_json::json!({
        "quick": quick,
        "io_mode": io_mode.to_string(),
        "online_cpus": online,
        "clients": CLIENTS,
        "window": WINDOW,
        "seconds": secs,
        "cells": cells
            .iter()
            .map(|&(workers, pin, qps)| {
                serde_json::json!({ "workers": workers, "pinned": pin, "qps": qps })
            })
            .collect::<Vec<_>>(),
    });
    let path = output_dir().join("scaling_wire.json");
    std::fs::write(&path, serde_json::to_string_pretty(&json).expect("serialize"))
        .expect("write scaling_wire.json");
    eprintln!("wrote {}", path.display());

    if check {
        let pinned: Vec<(usize, f64)> =
            cells.iter().filter(|&&(_, pin, _)| pin).map(|&(w, _, qps)| (w, qps)).collect();
        check_against_baseline(&pinned);
    }
}
