//! **X1**: sensitivity to the number of connected domains `K` over the
//! paper's stated parameter range (10–100). More domains → finer-grained
//! hidden load → easier balancing even for coarse schemes; fewer domains →
//! chunkier load → adaptive TTL matters more.

use geodns_bench::{apply_mode, flatten_series, print_p98_series, run_experiment, save_json};
use geodns_core::{Algorithm, Experiment, SimConfig};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn main() {
    let algorithms = [
        Algorithm::drr2_ttl_s_k(),
        Algorithm::prr2_ttl_k(),
        Algorithm::prr2_ttl(2),
        Algorithm::rr(),
    ];
    let names: Vec<String> = algorithms.iter().map(Algorithm::name).collect();

    let mut points = Vec::new();
    for k in [10usize, 20, 40, 60, 80, 100] {
        let mut e = Experiment::new(format!("sweep_domains@{k}"));
        for algorithm in algorithms {
            let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
            cfg.seed = SEED;
            cfg.workload.n_domains = k;
            apply_mode(&mut cfg);
            e.push(algorithm.name(), cfg);
        }
        points.push((format!("K={k}"), run_experiment(&e)));
    }

    print_p98_series(
        "X1: Sensitivity to the number of connected domains (heterogeneity 35%)",
        "number of domains K",
        &names,
        &points,
    );
    save_json("sweep_domains", &flatten_series(&points));
}
