//! **X5**: TTL rate normalization. The paper insists TTL levels be chosen
//! so every scheme issues the same average address-request rate; the naive
//! alternative anchors the hottest class at 240 s and stretches every other
//! TTL above it, quietly running a different DNS-traffic budget. This
//! ablation prints both the balance metric and the realized address-request
//! rate so the fairness question is visible.

use geodns_bench::{apply_mode, run_experiment, save_json};
use geodns_core::{format_table, Algorithm, Experiment, SimConfig};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn main() {
    let algorithms = [
        Algorithm::prr2_ttl_k(),
        Algorithm::drr2_ttl_s_k(),
        Algorithm::prr2_ttl(2),
        Algorithm::drr2_ttl_s(2),
    ];

    let mut e = Experiment::new("ablation_normalization");
    for algorithm in algorithms {
        for normalize in [true, false] {
            let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
            cfg.seed = SEED;
            cfg.normalize_ttl = normalize;
            apply_mode(&mut cfg);
            let suffix = if normalize { "normalized" } else { "naive" };
            e.push(format!("{} [{suffix}]", algorithm.name()), cfg);
        }
    }
    // Reference: the constant-TTL baseline whose address rate is the target.
    let mut rr = SimConfig::paper_default(Algorithm::rr(), HeterogeneityLevel::H35);
    rr.seed = SEED;
    apply_mode(&mut rr);
    e.push("RR [reference]", rr);

    let results = run_experiment(&e);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(label, r)| {
            vec![
                label.clone(),
                format!("{:.3}", r.p98()),
                format!("{:.4}", r.address_request_rate),
                format!("{:.2}", 100.0 * r.dns_control_fraction),
            ]
        })
        .collect();
    println!("\nX5: TTL rate-normalization ablation (heterogeneity 35%)\n");
    println!(
        "{}",
        format_table(&["variant", "P(maxU<0.98)", "addr req/s", "DNS control %"], &rows)
    );
    println!(
        "note: the naive variants anchor the hottest class at 240 s and stretch everything\n\
         else, collapsing the address-request rate far below the RR reference — they balance\n\
         worse *and* run a different DNS-traffic budget, so comparing them to RR would be\n\
         meaningless. Normalization (paper §4.1) pins every scheme to the same budget, which\n\
         is what makes Figures 1–7 fair."
    );
    save_json("ablation_normalization", &results);
}
