//! **X2**: sensitivity to the number of servers `N` over the paper's
//! stated range (5–17), holding total capacity at 500 hits/s and keeping a
//! Table-2-like capacity shape (≈30% full-power, ≈30% at 0.8, rest at
//! 0.65).

use geodns_bench::{apply_mode, flatten_series, print_p98_series, run_experiment, save_json};
use geodns_core::{Algorithm, Experiment, ServerSpec, SimConfig};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

/// A Table-2-style relative-capacity vector generalized to `n` servers.
fn shape(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let frac = i as f64 / n as f64;
            if frac < 0.3 {
                1.0
            } else if frac < 0.6 {
                0.8
            } else {
                0.65
            }
        })
        .collect()
}

fn main() {
    let algorithms = [
        Algorithm::drr2_ttl_s_k(),
        Algorithm::prr2_ttl_k(),
        Algorithm::prr2_ttl(2),
        Algorithm::rr(),
    ];
    let names: Vec<String> = algorithms.iter().map(Algorithm::name).collect();

    let mut points = Vec::new();
    for n in [5usize, 7, 9, 11, 13, 17] {
        let mut e = Experiment::new(format!("sweep_servers@{n}"));
        for algorithm in algorithms {
            let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
            cfg.seed = SEED;
            cfg.servers = ServerSpec::Relative(shape(n));
            apply_mode(&mut cfg);
            e.push(algorithm.name(), cfg);
        }
        points.push((format!("N={n}"), run_experiment(&e)));
    }

    print_p98_series(
        "X2: Sensitivity to the number of servers (35%-like capacity shape, ΣC = 500 hits/s)",
        "number of servers N",
        &names,
        &points,
    );
    save_json("sweep_servers", &flatten_series(&points));
}
