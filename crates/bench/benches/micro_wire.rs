//! DNS wire-path throughput harness: the per-query cost a real deployment
//! of the adaptive-TTL DNS pays, measured at three depths and gated
//! against the checked-in `BENCH_wire.json`.
//!
//! 1. **codec** — encode (fresh `to_bytes` vs reused-buffer
//!    `write_bytes`) and parse, queries/sec;
//! 2. **serve** — `AuthoritativeServer::handle_into` on the byte-matched
//!    fast path vs the parse-based slow path (the same `IN A` query with
//!    one trailing pad byte, which the fast path declines but the slow
//!    path answers identically);
//! 3. **daemon** — end-to-end over a real loopback socket: `Daemon`
//!    workers vs closed-loop client threads, answers/sec, measured three
//!    ways: `daemon_single` (shared socket, one datagram per syscall,
//!    window 1 — the PR 4 transport), `daemon_batched` (per-worker
//!    `SO_REUSEPORT` sockets, `recvmmsg`/`sendmmsg`, windowed clients —
//!    the default), and `daemon_uring` (same sockets, one
//!    `io_uring_enter` per drain-serve-flush round; skipped where the
//!    kernel has no io_uring).
//!
//! Modes:
//!
//! * default — full measurement;
//! * `GEODNS_QUICK=1` / `--quick` — shortened smoke run for CI;
//! * `--check` — after measuring, compare against `BENCH_wire.json` at
//!   the repository root and exit non-zero if the fast path's advantage
//!   over the slow path regressed by more than 40%, or (on Linux) if the
//!   batched transport's advantage over the single-datagram transport
//!   fell below the baseline's conservative floor (~1.5x vs the ~1.8x
//!   measured even on a single shared core, where reuseport cannot add
//!   parallelism — only syscall amortization is being gated), or (when
//!   io_uring is available) if the uring transport fell below its floor
//!   relative to batched — the uring gate asks "did the single-enter
//!   round keep up with the two-syscall round", so it is a ratio near
//!   1x with a floor low enough to absorb scheduler noise, not a
//!   speedup claim. Like
//!   `micro_engine --check`, the gates compare *speedups* measured on the
//!   same machine in the same run, so absolute machine speed cancels out.
//!   The serve margin is wider than `micro_engine`'s 20% because a ~15x
//!   ratio amplifies run-to-run noise in the small denominator; the gate
//!   exists to catch the fast path silently falling off (speedup → 1x),
//!   not 10% drift. The absolute qps floor is enforced separately by the
//!   CI daemon smoke job (`loadgen --min-qps`).

use std::net::UdpSocket;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use geodns_bench::{output_dir, quick_mode};
use geodns_core::format_table;
use geodns_wire::mmsg::{self, RecvBatch, SendBatch};
use geodns_wire::{AuthoritativeServer, Daemon, DaemonConfig, IoMode, Message, Question};

/// Queries/sec for `iters` runs of `f`, best of `repeats` attempts (the
/// minimum-noise estimator for a CPU-bound inner loop).
fn best_qps(iters: u64, repeats: usize, mut f: impl FnMut(u64)) -> f64 {
    let mut best = 0.0_f64;
    for _ in 0..repeats {
        let t0 = Instant::now();
        for i in 0..iters {
            f(i);
        }
        best = best.max(iters as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

struct CodecNumbers {
    encode_fresh_qps: f64,
    encode_reuse_qps: f64,
    parse_qps: f64,
}

fn bench_codec(iters: u64, repeats: usize) -> CodecNumbers {
    let query = Message::query(7, Question::a("www.example.org"));
    let bytes = query.to_bytes();
    let encode_fresh_qps = best_qps(iters, repeats, |_| {
        std::hint::black_box(query.to_bytes());
    });
    let mut buf = Vec::with_capacity(128);
    let encode_reuse_qps = best_qps(iters, repeats, |_| {
        query.write_bytes(&mut buf);
        std::hint::black_box(buf.len());
    });
    let parse_qps = best_qps(iters, repeats, |_| {
        std::hint::black_box(Message::parse(&bytes).expect("valid query"));
    });
    CodecNumbers { encode_fresh_qps, encode_reuse_qps, parse_qps }
}

struct ServeNumbers {
    fast_qps: f64,
    slow_qps: f64,
}

impl ServeNumbers {
    fn speedup(&self) -> f64 {
        self.fast_qps / self.slow_qps
    }
}

fn bench_serve(iters: u64, repeats: usize) -> ServeNumbers {
    let mut server = AuthoritativeServer::example();
    let query = Message::query(7, Question::a("www.example.org")).to_bytes();
    // One trailing pad byte: same parsed meaning, but the exact-length
    // fast path declines it, forcing the full parse → build → encode path.
    let mut padded = query.clone();
    padded.push(0);
    let mut out = Vec::with_capacity(128);
    let mut now = 0.0_f64;
    let fast_qps = best_qps(iters, repeats, |i| {
        now += 0.001;
        let src = [10, (i % 4) as u8, 0, 1];
        server.handle_into(&query, src, now, &mut out).expect("fast path answers");
    });
    let slow_qps = best_qps(iters, repeats, |i| {
        now += 0.001;
        let src = [10, (i % 4) as u8, 0, 1];
        server.handle_into(&padded, src, now, &mut out).expect("slow path answers");
    });
    ServeNumbers { fast_qps, slow_qps }
}

/// End-to-end answers/sec through a real loopback daemon in the given
/// io mode: `workers` daemon threads, `clients` closed-loop query
/// threads each keeping `window` queries in flight through the `mmsg`
/// batched-socket arenas (window 1 reproduces the classic
/// one-datagram-per-syscall client).
fn bench_daemon(io_mode: IoMode, workers: usize, clients: usize, window: usize, secs: f64) -> f64 {
    let shards = (0..workers).map(|w| AuthoritativeServer::example_shard(w as u64, 7)).collect();
    let mut cfg = DaemonConfig::new("127.0.0.1:0".parse().expect("valid addr"));
    cfg.io_mode = io_mode;
    let daemon = Daemon::spawn(&cfg, shards).expect("daemon spawns");
    let target = daemon.local_addr();

    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs_f64(secs);
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let socket = UdpSocket::bind("127.0.0.1:0").expect("client bind");
                socket.connect(target).expect("connect");
                socket.set_read_timeout(Some(Duration::from_secs(1))).expect("timeout");
                let query = Message::query(0, Question::a("www.example.org")).to_bytes();
                let mut tx = SendBatch::new(window, 512);
                let mut rx = RecvBatch::new(window, 512);
                let mut answered = 0u64;
                let mut id = (c as u16) << 10;
                while Instant::now() < deadline {
                    for _ in 0..window {
                        id = id.wrapping_add(1);
                        let buf = tx.buffer();
                        buf.extend_from_slice(&query);
                        buf[0..2].copy_from_slice(&id.to_be_bytes());
                        tx.commit(target);
                    }
                    mmsg::send_batch(&socket, &mut tx);
                    let mut got = 0;
                    while got < window {
                        match mmsg::recv_batch(&socket, &mut rx) {
                            Ok(n) => {
                                for i in 0..n {
                                    let (resp, _) = rx.datagram(i);
                                    assert!(resp.len() > 12, "short response");
                                }
                                answered += n as u64;
                                got += n;
                            }
                            // A recv timeout re-sends the burst: the loop
                            // is closed, lost datagrams just cost time.
                            Err(_) => break,
                        }
                    }
                }
                answered
            })
        })
        .collect();
    let answered: u64 = threads.into_iter().map(|t| t.join().expect("client panicked")).sum();
    let elapsed = t0.elapsed().as_secs_f64();
    let report = daemon.shutdown();
    assert_eq!(report.totals().dropped, 0, "daemon dropped well-formed queries");
    assert_eq!(report.totals().tx_errors, 0, "daemon hit transmit errors");
    answered as f64 / elapsed
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Loads the checked-in baseline and fails the process if the measured
/// fast-path speedup regressed by more than 40% (see the module docs for
/// why this margin is wider than `micro_engine`'s), if the batched
/// transport's advantage over the single-datagram transport fell below
/// the baseline's conservative floor, or if the uring transport fell
/// below its floor relative to batched. The transport gates only apply
/// on Linux: elsewhere `IoMode::Batched` degrades to the portable
/// fallback and the ratios are 1x by construction; the uring gate
/// additionally needs a kernel that can grant a ring.
fn check_against_baseline(
    serve: &ServeNumbers,
    batched_vs_single: f64,
    uring_vs_batched: Option<f64>,
) {
    let path = repo_root().join("BENCH_wire.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("--check: cannot read {}: {e}", path.display()));
    let baseline: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("--check: bad baseline JSON: {e}"));

    let base_speedup =
        baseline["serve"]["fast_path_speedup"].as_f64().expect("baseline fast_path_speedup");
    let now = serve.speedup();
    let floor = base_speedup * 0.6;
    eprintln!(
        "check fast-path speedup {now:.2}x vs baseline {base_speedup:.2}x (floor {floor:.2}x)"
    );
    if now < floor {
        eprintln!("micro_wire: fast-path speedup regressed >40% vs BENCH_wire.json");
        std::process::exit(1);
    }
    eprintln!("micro_wire: fast-path speedup within 40% of the checked-in baseline");

    if cfg!(target_os = "linux") {
        let gate = baseline["daemon_batched"]["gate_floor"]
            .as_f64()
            .expect("baseline daemon_batched.gate_floor");
        eprintln!(
            "check batched-vs-single transport speedup {batched_vs_single:.2}x (floor {gate:.2}x)"
        );
        if batched_vs_single < gate {
            eprintln!("micro_wire: batched transport speedup fell below the BENCH_wire.json floor");
            std::process::exit(1);
        }
        eprintln!("micro_wire: batched transport speedup holds the checked-in floor");

        match uring_vs_batched {
            Some(ratio) => {
                let floor = baseline["daemon_uring"]["gate_floor"]
                    .as_f64()
                    .expect("baseline daemon_uring.gate_floor");
                eprintln!("check uring-vs-batched transport ratio {ratio:.2}x (floor {floor:.2}x)");
                if ratio < floor {
                    eprintln!(
                        "micro_wire: uring transport ratio fell below the BENCH_wire.json floor"
                    );
                    std::process::exit(1);
                }
                eprintln!("micro_wire: uring transport ratio holds the checked-in floor");
            }
            None => eprintln!("micro_wire: skipping the uring gate (io_uring unavailable)"),
        }
    } else {
        eprintln!("micro_wire: skipping the transport gates (non-Linux fallback io)");
    }
}

fn main() {
    let quick = quick_mode();
    let check = std::env::args().any(|a| a == "--check");
    let (iters, repeats) = if quick { (200_000u64, 2) } else { (2_000_000u64, 3) };
    let daemon_secs = if quick { 1.0 } else { 3.0 };

    eprintln!(
        "[micro_wire] {iters} iterations x {repeats} repeats per point{}",
        if quick { " (quick mode)" } else { "" }
    );

    let codec = bench_codec(iters, repeats);
    let serve = bench_serve(iters, repeats);
    // Best of two attempts per mode: one daemon run is at the mercy of
    // scheduler placement, and the gate below consumes the ratio.
    eprintln!("[micro_wire] end-to-end loopback daemon, single io (2 x {daemon_secs:.0} s) …");
    let daemon_single = bench_daemon(IoMode::Single, 2, 4, 1, daemon_secs).max(bench_daemon(
        IoMode::Single,
        2,
        4,
        1,
        daemon_secs,
    ));
    eprintln!("[micro_wire] end-to-end loopback daemon, batched io (2 x {daemon_secs:.0} s) …");
    let daemon_batched = bench_daemon(IoMode::Batched, 2, 4, 32, daemon_secs).max(bench_daemon(
        IoMode::Batched,
        2,
        4,
        32,
        daemon_secs,
    ));
    let batched_vs_single = daemon_batched / daemon_single;
    let daemon_uring = geodns_wire::uring::supported().then(|| {
        eprintln!("[micro_wire] end-to-end loopback daemon, uring io (2 x {daemon_secs:.0} s) …");
        bench_daemon(IoMode::Uring, 2, 4, 32, daemon_secs).max(bench_daemon(
            IoMode::Uring,
            2,
            4,
            32,
            daemon_secs,
        ))
    });
    let uring_vs_batched = daemon_uring.map(|qps| qps / daemon_batched);

    let rows = vec![
        vec!["codec: encode (fresh Vec)".into(), format!("{:.0}", codec.encode_fresh_qps)],
        vec!["codec: encode (reused buffer)".into(), format!("{:.0}", codec.encode_reuse_qps)],
        vec!["codec: parse".into(), format!("{:.0}", codec.parse_qps)],
        vec!["serve: fast path".into(), format!("{:.0}", serve.fast_qps)],
        vec!["serve: slow path (padded)".into(), format!("{:.0}", serve.slow_qps)],
        vec!["daemon: single io (window 1)".into(), format!("{daemon_single:.0}")],
        vec!["daemon: batched io (window 32)".into(), format!("{daemon_batched:.0}")],
        vec![
            "daemon: uring io (window 32)".into(),
            daemon_uring.map_or_else(|| "unavailable".into(), |qps| format!("{qps:.0}")),
        ],
    ];
    println!("\nwire-path throughput (queries/sec)\n");
    println!("{}", format_table(&["stage", "qps"], &rows));
    println!(
        "fast path is {:.2}x the slow path; reused-buffer encode is {:.2}x a fresh Vec; \
         batched transport is {:.2}x the single-datagram transport{}",
        serve.speedup(),
        codec.encode_reuse_qps / codec.encode_fresh_qps,
        batched_vs_single,
        uring_vs_batched
            .map_or_else(String::new, |r| format!("; uring transport is {r:.2}x the batched"))
    );

    let json = serde_json::json!({
        "quick": quick,
        "iters": iters,
        "codec": {
            "encode_fresh_qps": codec.encode_fresh_qps,
            "encode_reuse_qps": codec.encode_reuse_qps,
            "parse_qps": codec.parse_qps,
            "reuse_speedup": codec.encode_reuse_qps / codec.encode_fresh_qps,
        },
        "serve": {
            "fast_qps": serve.fast_qps,
            "slow_qps": serve.slow_qps,
            "fast_path_speedup": serve.speedup(),
        },
        "daemon_single": {
            "io_mode": "single",
            "workers": 2,
            "clients": 4,
            "window": 1,
            "seconds": daemon_secs,
            "qps": daemon_single,
        },
        "daemon_batched": {
            "io_mode": "batched",
            "workers": 2,
            "clients": 4,
            "window": 32,
            "seconds": daemon_secs,
            "qps": daemon_batched,
            "batched_vs_single": batched_vs_single,
        },
        "daemon_uring": {
            "io_mode": "uring",
            "supported": daemon_uring.is_some(),
            "workers": 2,
            "clients": 4,
            "window": 32,
            "seconds": daemon_secs,
            "qps": daemon_uring,
            "uring_vs_batched": uring_vs_batched,
        },
    });
    let path = output_dir().join("micro_wire.json");
    std::fs::write(&path, serde_json::to_string_pretty(&json).expect("serialize"))
        .expect("write micro_wire.json");
    eprintln!("wrote {}", path.display());

    if check {
        check_against_baseline(&serve, batched_vs_single, uring_vs_batched);
    }
}
