//! Criterion micro-benchmarks for the DNS wire path: codec throughput and
//! the full query→answer handling loop, i.e. the per-query cost a real
//! deployment of the adaptive-TTL DNS would pay.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geodns_wire::{AuthoritativeServer, Message, Question};

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    let query = Message::query(7, Question::a("www.example.org"));
    let bytes = query.to_bytes();
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode_query", |b| b.iter(|| query.to_bytes()));
    g.bench_function("parse_query", |b| b.iter(|| Message::parse(&bytes).unwrap()));

    let mut server = AuthoritativeServer::example();
    let response = server.handle(&bytes, [10, 0, 0, 1], 0.0).unwrap();
    g.bench_function("parse_response", |b| b.iter(|| Message::parse(&response).unwrap()));
    g.finish();
}

fn bench_serve(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_serve");
    g.throughput(Throughput::Elements(1));
    let query = Message::query(7, Question::a("www.example.org")).to_bytes();
    let mut server = AuthoritativeServer::example();
    let mut t = 0.0f64;
    g.bench_function("handle_a_query", |b| {
        b.iter(|| {
            t += 0.001;
            server.handle(&query, [10, 1, 0, 1], t).unwrap()
        });
    });

    let nx = Message::query(7, Question::a("nope.example.org")).to_bytes();
    g.bench_function("handle_nxdomain", |b| {
        b.iter(|| server.handle(&nx, [10, 1, 0, 1], 0.0).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_serve);
criterion_main!(benches);
