//! Regenerates **Table 2**: the four heterogeneity levels and their
//! relative server capacities, plus the derived absolute capacities this
//! implementation scales to a constant 500 hits/s total.

use geodns_bench::output_dir;
use geodns_server::{CapacityPlan, HeterogeneityLevel};

fn main() {
    println!("\nTable 2: Parameters of the heterogeneity levels (N = 7, ΣC = 500 hits/s)\n");
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for level in HeterogeneityLevel::ALL {
        let plan = CapacityPlan::from_level(level, 500.0);
        let rel = plan.relatives().iter().map(|a| format!("{a}")).collect::<Vec<_>>().join(", ");
        let abs = plan.absolutes().iter().map(|c| format!("{c:.1}")).collect::<Vec<_>>().join(", ");
        rows.push(vec![
            level.to_string(),
            format!("{{{rel}}}"),
            format!("{{{abs}}}"),
            format!("{:.2}", plan.power_ratio()),
        ]);
        json_rows.push(serde_json::json!({
            "level_pct": level.percent(),
            "relative": plan.relatives(),
            "absolute": plan.absolutes(),
            "power_ratio": plan.power_ratio(),
            "total": plan.total_capacity(),
        }));

        assert!((plan.total_capacity() - 500.0).abs() < 1e-9, "total capacity held constant");
    }
    println!(
        "{}",
        geodns_core::format_table(
            &["Level", "Relative capacities α_i", "Absolute C_i (hits/s)", "ρ=C1/CN"],
            &rows
        )
    );

    std::fs::write(
        output_dir().join("table2.json"),
        serde_json::to_string_pretty(&serde_json::json!(json_rows)).unwrap(),
    )
    .expect("write table2.json");
    eprintln!("wrote {}", output_dir().join("table2.json").display());
}
