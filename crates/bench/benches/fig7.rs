//! Regenerates **Figure 7**: the Figure-6 estimation-error sweep at 50%
//! heterogeneity, where the paper reports the TTL/2-family degrading
//! substantially once the error reaches ~30%.

use geodns_bench::run_error_sweep;
use geodns_server::HeterogeneityLevel;

fn main() {
    run_error_sweep("fig7", 7, HeterogeneityLevel::H50, 1998);
}
