//! Regenerates **Figure 4**: sensitivity to non-cooperative name servers
//! (every NS clamps TTLs up to a minimum threshold) at 20% heterogeneity.

use geodns_bench::run_min_ttl_sweep;
use geodns_server::HeterogeneityLevel;

fn main() {
    run_min_ttl_sweep("fig4", 4, HeterogeneityLevel::H20, 1998);
}
