//! Regenerates **Figure 1**: cumulative frequency of the maximum server
//! utilization for the *deterministic* algorithms at 20% heterogeneity,
//! bracketed by the ideal envelope (PRR under uniform clients) above and
//! conventional RR below.

use geodns_bench::{apply_mode, print_cdf_table, run_experiment, save_json};
use geodns_core::{Algorithm, Experiment, SimConfig};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn main() {
    let level = HeterogeneityLevel::H20;
    let mut e = Experiment::new("fig1");

    let mut ideal = SimConfig::ideal(level);
    ideal.seed = SEED;
    apply_mode(&mut ideal);
    e.push("Ideal", ideal);

    let algorithms = [
        Algorithm::drr2_ttl_s_k(),
        Algorithm::drr_ttl_s_k(),
        Algorithm::drr2_ttl_s(2),
        Algorithm::drr_ttl_s(2),
        Algorithm::drr2_ttl_s(1),
        Algorithm::drr_ttl_s(1),
        Algorithm::rr(),
    ];
    for algorithm in algorithms {
        let mut cfg = SimConfig::paper_default(algorithm, level);
        cfg.seed = SEED;
        apply_mode(&mut cfg);
        e.push(algorithm.name(), cfg);
    }

    let results = run_experiment(&e);
    print_cdf_table("Figure 1: Deterministic algorithms (heterogeneity 20%)", &results);

    // The paper's headline readings for this figure.
    println!("paper check — P(maxU < 0.9):");
    for (label, r) in &results {
        println!("  {label:<14} {:.3}", r.prob_max_util_lt(0.9));
    }
    save_json("fig1", &results);
}
