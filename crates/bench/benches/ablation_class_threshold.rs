//! **X4**: the two-tier class threshold γ. The paper fixes γ = 1/K; this
//! ablation sweeps it to show how hot/normal membership drives the TTL/2
//! and RR2 machinery.

use geodns_bench::{apply_mode, flatten_series, print_p98_series, run_experiment, save_json};
use geodns_core::{Algorithm, Experiment, SimConfig};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn main() {
    let algorithms = [Algorithm::prr2_ttl(2), Algorithm::drr2_ttl_s(2)];
    let names: Vec<String> = algorithms.iter().map(Algorithm::name).collect();

    let mut points = Vec::new();
    for gamma in [0.01, 0.025, 0.05, 0.10, 0.20] {
        let mut e = Experiment::new(format!("ablation_class_threshold@{gamma}"));
        for algorithm in algorithms {
            let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
            cfg.seed = SEED;
            cfg.class_threshold = Some(gamma);
            apply_mode(&mut cfg);
            e.push(algorithm.name(), cfg);
        }
        points.push((format!("γ={gamma}"), run_experiment(&e)));
    }

    print_p98_series(
        "X4: Class-threshold γ ablation (heterogeneity 35%; paper default γ = 1/K = 0.05)",
        "class threshold γ",
        &names,
        &points,
    );
    save_json("ablation_class_threshold", &flatten_series(&points));
}
