//! **X7**: estimator shoot-out under a *dynamic* workload — the scenario
//! the paper's §5.2 worries about ("client request rates from the domains
//! may change constantly") and its follow-up state-estimator report [3]
//! addresses. A flash crowd triples the second-busiest domain mid-run;
//! the oracle keeps believing yesterday's rates, while the measured
//! estimators track.

use geodns_bench::{apply_mode, run_experiment, save_json};
use geodns_core::{format_table, Algorithm, EstimatorKind, Experiment, RateProfile, SimConfig};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn main() {
    let algorithms = [Algorithm::prr2_ttl_k(), Algorithm::drr2_ttl_s_k()];
    let estimators = [
        ("oracle (stale)", EstimatorKind::Oracle),
        ("EMA α=0.25 / 32 s", EstimatorKind::measured_default()),
        ("EMA α=1.0 / 32 s", EstimatorKind::Measured { collect_interval_s: 32.0, ema_alpha: 1.0 }),
        ("window 8×32 s", EstimatorKind::window_default()),
        ("window 2×32 s", EstimatorKind::WindowAverage { collect_interval_s: 32.0, windows: 2 }),
    ];

    let mut e = Experiment::new("sweep_estimators");
    for &algorithm in &algorithms {
        for &(label, estimator) in &estimators {
            let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
            cfg.seed = SEED;
            cfg.estimator = estimator;
            apply_mode(&mut cfg);
            // The flash crowd occupies the middle third of the measured span.
            let start = cfg.warmup_s + cfg.duration_s / 3.0;
            cfg.workload.profile = RateProfile::FlashCrowd {
                domain: 1,
                start_s: start,
                duration_s: cfg.duration_s / 3.0,
                factor: 3.0,
            };
            e.push(format!("{} + {label}", algorithm.name()), cfg);
        }
    }

    let results = run_experiment(&e);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(label, r)| {
            vec![
                label.clone(),
                format!("{:.3}", r.p98()),
                format!("{:.3}", r.prob_max_util_lt(0.9)),
                format!("{:.0}", r.page_response_p95_s * 1e3),
            ]
        })
        .collect();
    println!("\nX7: Hidden-load estimators under a 3× mid-run flash crowd (heterogeneity 35%)\n");
    println!("{}", format_table(&["variant", "P(maxU<0.98)", "P(maxU<0.9)", "page p95 ms"], &rows));
    save_json("sweep_estimators", &results);
}
