//! **X10**: does the paper's result depend on exponential service times?
//! Re-runs the headline comparison with deterministic (M/D/1-like) and
//! heavy-tailed Pareto service, all at the same per-server mean `1/C_i`.

use geodns_bench::{apply_mode, run_experiment, save_json};
use geodns_core::{format_table, Algorithm, Experiment, ServiceModel, SimConfig};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn main() {
    let algorithms = [Algorithm::rr(), Algorithm::prr2_ttl(2), Algorithm::drr2_ttl_s_k()];
    let services: [(&str, ServiceModel); 3] = [
        ("exponential", ServiceModel::Exponential),
        ("deterministic", ServiceModel::Deterministic),
        ("pareto α=2.2", ServiceModel::Pareto { shape: 2.2 }),
    ];

    let mut e = Experiment::new("ablation_service");
    for &algorithm in &algorithms {
        for &(label, service) in &services {
            let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
            cfg.seed = SEED;
            cfg.service = service;
            apply_mode(&mut cfg);
            e.push(format!("{} / {label}", algorithm.name()), cfg);
        }
    }
    let results = run_experiment(&e);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(label, r)| {
            vec![
                label.clone(),
                format!("{:.3}", r.p98()),
                format!("{:.3}", r.prob_max_util_lt(0.9)),
                format!("{:.0}", r.page_response_p95_s * 1e3),
            ]
        })
        .collect();
    println!("\nX10: Service-time model ablation (heterogeneity 35%, same mean 1/C_i)\n");
    println!("{}", format_table(&["variant", "P(maxU<0.98)", "P(maxU<0.9)", "page p95 ms"], &rows));
    println!(
        "reading: the adaptive-TTL ranking is about *which server the hidden load lands on*,\n\
         not about queueing micro-behaviour — it should survive all three service shapes,\n\
         with heavy tails depressing everyone's absolute numbers."
    );
    save_json("ablation_service", &results);
}
