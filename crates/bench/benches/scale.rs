//! Internet-scale wall-chart: events/sec and bytes/client as the client
//! population grows 10k → 1M over a 10k-domain Zipf workload, plus a
//! weak-scaling row across shard counts.
//!
//! The paper simulates 500 clients and 20 domains; this chart answers
//! whether the same model — dense struct-of-arrays client state, the
//! alias-sampled Zipf partition, the calendar-queue engine — holds up at
//! Internet scale. Site capacity grows with the population (1 hit/s per
//! client, the paper's 500-for-500 design point) so per-server offered
//! load stays at the ~2/3 design level while the event count scales.
//!
//! Two sections:
//!
//! * **dense** — single-world runs at 10k / 100k / 1M clients; reports
//!   events processed, wall-clock events/sec, and the measured per-client
//!   session-state bytes (the struct-of-arrays columns; ~32¼ B/client).
//! * **weak scaling** — a fixed per-shard population at 1 / 2 / 4 shards
//!   ([`ShardSpec`]); total work grows with the shard count, so on a
//!   many-core box events/sec should grow and on a one-core box stay
//!   flat. The gate is a *collapse* detector, not a speedup claim: the
//!   committed baseline comes from a single-core reference box where the
//!   ideal curve is flat, so the check fails only when sharding destroys
//!   throughput (barrier convoying, exchange overhead), never when a
//!   small box fails to show a big box's speedup.
//!
//! Modes:
//!
//! * default — the full grid, 1M-client cell included;
//! * `GEODNS_QUICK=1` / `--quick` — shrunken populations and spans for CI;
//! * `--check` — gate the measured numbers against the committed
//!   `BENCH_scale.json`: every dense cell must hold
//!   `gate_max_bytes_per_client`, and every multi-shard cell must hold
//!   `gate_min_weak_ratio` × the 1-shard events/sec.
//!
//! The grid is persisted to `target/paper/scale.json`; the committed
//! `BENCH_scale.json` is a hand-promoted snapshot of a reference run plus
//! the gate values.

use std::path::PathBuf;
use std::time::Instant;

use geodns_bench::{output_dir, quick_mode};
use geodns_core::{format_table, run_simulation_metered, Algorithm, SimConfig};
use geodns_server::HeterogeneityLevel;

const DOMAINS: usize = 10_000;

/// A scale-run configuration: `clients` over [`DOMAINS`] Zipf domains,
/// capacity matched to the population, response CDFs capped so report
/// memory stays bounded however long the run.
fn scale_config(clients: usize, warmup_s: f64, duration_s: f64, shards: usize) -> SimConfig {
    let mut cfg = SimConfig::paper_default(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
    cfg.workload.n_clients = clients;
    cfg.workload.n_domains = DOMAINS;
    cfg.total_capacity = clients as f64;
    cfg.warmup_s = warmup_s;
    cfg.duration_s = duration_s;
    cfg.seed = 0x5CA1_E000 + shards as u64;
    cfg.cdf_sample_cap = 1 << 20;
    cfg.shard.shards = shards;
    cfg
}

/// One measured cell: run to completion, time it, pull the metrics.
struct Cell {
    clients: usize,
    shards: usize,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    bytes_per_client: f64,
    hits_completed: u64,
    vm_hwm_mb: f64,
}

fn run_cell(cfg: &SimConfig) -> Cell {
    let t0 = Instant::now();
    let (report, metrics) = run_simulation_metered(cfg).expect("valid scale config");
    let wall_s = t0.elapsed().as_secs_f64();
    Cell {
        clients: cfg.workload.n_clients,
        shards: cfg.shard.shards,
        events: metrics.events,
        wall_s,
        events_per_sec: metrics.events as f64 / wall_s.max(1e-9),
        bytes_per_client: metrics.bytes_per_client(),
        hits_completed: report.hits_completed,
        vm_hwm_mb: vm_hwm_mb(),
    }
}

/// Peak resident set of this process in MiB (`VmHWM`), 0 where
/// `/proc/self/status` is unavailable. Monotone across cells — the 1M
/// cell runs last, so its value is the chart's memory headline.
fn vm_hwm_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Applies the two gates from the committed baseline.
fn check_against_baseline(dense: &[Cell], weak: &[Cell]) {
    let path = repo_root().join("BENCH_scale.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("--check: cannot read {}: {e}", path.display()));
    let baseline: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("--check: bad baseline JSON: {e}"));
    let max_bytes =
        baseline["gate_max_bytes_per_client"].as_f64().expect("baseline gate_max_bytes_per_client");
    let min_ratio = baseline["gate_min_weak_ratio"].as_f64().expect("baseline gate_min_weak_ratio");

    let mut ok = true;
    for cell in dense {
        eprintln!(
            "check dense {} clients: {:.2} bytes/client (cap {max_bytes:.1})",
            cell.clients, cell.bytes_per_client
        );
        if cell.bytes_per_client > max_bytes {
            eprintln!("scale: {} clients blew the bytes/client cap", cell.clients);
            ok = false;
        }
    }
    let base = weak.first().map_or(0.0, |c| c.events_per_sec);
    assert!(base > 0.0, "1-shard cell measured zero throughput");
    for cell in &weak[1..] {
        let ratio = cell.events_per_sec / base;
        eprintln!(
            "check weak-scaling {} shards: {ratio:.2}x the 1-shard events/sec \
             (floor {min_ratio:.2}x)",
            cell.shards
        );
        if ratio < min_ratio {
            eprintln!("scale: {}-shard throughput collapsed below the floor", cell.shards);
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    eprintln!("scale: all cells hold the BENCH_scale.json gates");
}

fn main() {
    let quick = quick_mode();
    let check = std::env::args().any(|a| a == "--check");

    // (clients, warmup_s, duration_s): spans shrink as populations grow so
    // every cell processes a few million events, enough for a stable rate.
    let dense_grid: &[(usize, f64, f64)] = if quick {
        &[(10_000, 5.0, 15.0), (100_000, 2.0, 6.0)]
    } else {
        &[(10_000, 30.0, 120.0), (100_000, 10.0, 30.0), (1_000_000, 5.0, 15.0)]
    };
    // Per-shard population must cover the domain set (>= DOMAINS clients).
    let (per_shard, weak_warmup, weak_duration) =
        if quick { (10_000, 3.0, 9.0) } else { (20_000, 10.0, 40.0) };
    let shard_grid = [1usize, 2, 4];

    eprintln!(
        "[scale] {DOMAINS} domains, dense grid {:?} clients, weak scaling {per_shard} \
         clients/shard x {shard_grid:?} shards{}",
        dense_grid.iter().map(|&(c, _, _)| c).collect::<Vec<_>>(),
        if quick { " (quick mode)" } else { "" }
    );

    let mut dense: Vec<Cell> = Vec::new();
    for &(clients, warmup, duration) in dense_grid {
        let cell = run_cell(&scale_config(clients, warmup, duration, 1));
        eprintln!(
            "[scale] {clients} clients: {:.0} events/s over {} events, {:.2} bytes/client, \
             peak rss {:.0} MiB",
            cell.events_per_sec, cell.events, cell.bytes_per_client, cell.vm_hwm_mb
        );
        dense.push(cell);
    }

    let mut weak: Vec<Cell> = Vec::new();
    for &shards in &shard_grid {
        let cell = run_cell(&scale_config(per_shard * shards, weak_warmup, weak_duration, shards));
        eprintln!(
            "[scale] {} shards x {per_shard} clients: {:.0} events/s over {} events",
            shards, cell.events_per_sec, cell.events
        );
        weak.push(cell);
    }

    let dense_rows: Vec<Vec<String>> = dense
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.clients),
                format!("{}", c.events),
                format!("{:.2}", c.wall_s),
                format!("{:.0}", c.events_per_sec),
                format!("{:.2}", c.bytes_per_client),
                format!("{:.0}", c.vm_hwm_mb),
            ]
        })
        .collect();
    println!("\nscale: dense client state over {DOMAINS} Zipf domains\n");
    println!(
        "{}",
        format_table(
            &["clients", "events", "wall s", "events/s", "B/client", "peak MiB"],
            &dense_rows
        )
    );

    let weak_base = weak.first().map_or(f64::NAN, |c| c.events_per_sec);
    let weak_rows: Vec<Vec<String>> = weak
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.shards),
                format!("{}", c.clients),
                format!("{}", c.events),
                format!("{:.0}", c.events_per_sec),
                format!("{:.2}x", c.events_per_sec / weak_base),
            ]
        })
        .collect();
    println!("weak scaling: {per_shard} clients per shard\n");
    println!(
        "{}",
        format_table(&["shards", "clients", "events", "events/s", "vs 1 shard"], &weak_rows)
    );

    let cell_json = |c: &Cell| {
        serde_json::json!({
            "clients": c.clients,
            "shards": c.shards,
            "events": c.events,
            "wall_s": c.wall_s,
            "events_per_sec": c.events_per_sec,
            "bytes_per_client": c.bytes_per_client,
            "hits_completed": c.hits_completed,
            "vm_hwm_mb": c.vm_hwm_mb,
        })
    };
    let json = serde_json::json!({
        "quick": quick,
        "domains": DOMAINS,
        "dense": dense.iter().map(cell_json).collect::<Vec<_>>(),
        "weak_scaling": weak.iter().map(cell_json).collect::<Vec<_>>(),
    });
    let path = output_dir().join("scale.json");
    std::fs::write(&path, serde_json::to_string_pretty(&json).expect("serialize"))
        .expect("write scale.json");
    eprintln!("wrote {}", path.display());

    if check {
        check_against_baseline(&dense, &weak);
    }
}
