//! **X6**: the `TTL/i` meta-algorithm of §3.1 — how many domain classes
//! are enough? Sweeps `i` from 1 (constant TTL) through `K = 20`
//! (per-domain TTL) for both the probabilistic and deterministic families.

use geodns_bench::{apply_mode, flatten_series, print_p98_series, run_experiment, save_json};
use geodns_core::{Algorithm, Experiment, PolicyKind, SimConfig, TierSpec, TtlKind};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn main() {
    let names = vec!["PRR2-TTL/i".to_string(), "DRR2-TTL/S_i".to_string()];

    let mut points = Vec::new();
    for tiers in [1usize, 2, 3, 5, 10, 20] {
        let mut e = Experiment::new(format!("sweep_ttl_tiers@{tiers}"));

        let spec = if tiers >= 20 { TierSpec::PerDomain } else { TierSpec::Classes(tiers) };
        let prob = Algorithm::new(
            PolicyKind::Prr2,
            if tiers == 1 {
                TtlKind::Constant
            } else {
                TtlKind::Adaptive { tiers: spec, server_scaled: false }
            },
        );
        let det =
            Algorithm::new(PolicyKind::Rr2, TtlKind::Adaptive { tiers: spec, server_scaled: true });

        let mut cfg = SimConfig::paper_default(prob, HeterogeneityLevel::H35);
        cfg.seed = SEED;
        apply_mode(&mut cfg);
        e.push("PRR2-TTL/i", cfg);

        let mut cfg = SimConfig::paper_default(det, HeterogeneityLevel::H35);
        cfg.seed = SEED;
        apply_mode(&mut cfg);
        e.push("DRR2-TTL/S_i", cfg);

        points.push((format!("i={tiers}"), run_experiment(&e)));
    }

    print_p98_series(
        "X6: TTL/i tier-count sweep (heterogeneity 35%, K = 20 domains)",
        "number of TTL classes i",
        &names,
        &points,
    );
    save_json("sweep_ttl_tiers", &flatten_series(&points));
}
