//! Per-hit service-time models.
//!
//! The paper characterizes each server purely by its capacity `C_i` in
//! hits/s; we default to exponential service with mean `1/C_i` (the
//! classic M/M/1-style assumption). Real Web service times are burstier —
//! object sizes are heavy-tailed (Arlitt & Williamson, the workload study
//! the paper cites) — so this module also offers deterministic and
//! bounded-Pareto-like alternatives with the *same mean*, letting an
//! ablation check that the scheduling results don't hinge on the
//! exponential assumption.

use geodns_simcore::dist::{Distribution, Exponential, Pareto};
use geodns_simcore::StreamRng;
use serde::{Deserialize, Serialize};

/// The shape of per-hit service times. Every variant has mean `1 / C_i`
/// for a server of capacity `C_i`; only the variance changes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ServiceModel {
    /// Exponential service (default; coefficient of variation 1).
    #[default]
    Exponential,
    /// Deterministic service (coefficient of variation 0) — the M/D/1
    /// lower-variance extreme.
    Deterministic,
    /// Pareto service with the given tail index (`shape > 1` so the mean
    /// exists; smaller shape = heavier tail). `shape` around 2–2.5 mimics
    /// measured Web object size tails.
    Pareto {
        /// Tail index α (must exceed 1).
        shape: f64,
    },
}

impl ServiceModel {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if a Pareto shape does not exceed 1 (infinite
    /// mean) or is not finite.
    pub fn validate(&self) -> Result<(), String> {
        if let ServiceModel::Pareto { shape } = self {
            if !(shape.is_finite() && *shape > 1.0) {
                return Err(format!("pareto service shape must be > 1, got {shape}"));
            }
        }
        Ok(())
    }

    /// Builds the sampler for a server of `capacity` hits/s.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive or the model is invalid (both
    /// are checked by `SimConfig::validate` first).
    #[must_use]
    pub fn sampler(&self, capacity: f64) -> ServiceSampler {
        assert!(capacity > 0.0, "capacity must be positive");
        let mean = 1.0 / capacity;
        match *self {
            ServiceModel::Exponential => ServiceSampler::Exponential(Exponential::with_mean(mean)),
            ServiceModel::Deterministic => ServiceSampler::Deterministic(mean),
            ServiceModel::Pareto { shape } => {
                // mean = shape·x_min/(shape−1) ⇒ x_min = mean·(shape−1)/shape.
                let x_min = mean * (shape - 1.0) / shape;
                ServiceSampler::Pareto(Pareto::new(x_min, shape).expect("validated shape"))
            }
        }
    }
}

/// A ready-to-draw service-time sampler for one server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceSampler {
    /// Exponential service times.
    Exponential(Exponential),
    /// Constant service times.
    Deterministic(f64),
    /// Pareto service times.
    Pareto(Pareto),
}

impl ServiceSampler {
    /// Draws one service time in seconds.
    pub fn sample(&self, rng: &mut StreamRng) -> f64 {
        match self {
            ServiceSampler::Exponential(d) => d.sample(rng),
            ServiceSampler::Deterministic(mean) => *mean,
            ServiceSampler::Pareto(d) => d.sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodns_simcore::RngStreams;

    fn mean_of(model: ServiceModel, capacity: f64) -> f64 {
        let sampler = model.sampler(capacity);
        let mut rng = RngStreams::new(0x5E12).stream("svc");
        let n = 300_000;
        (0..n).map(|_| sampler.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn all_models_share_the_mean() {
        let capacity = 80.0;
        let expect = 1.0 / capacity;
        for model in [
            ServiceModel::Exponential,
            ServiceModel::Deterministic,
            ServiceModel::Pareto { shape: 2.5 },
        ] {
            let m = mean_of(model, capacity);
            assert!((m - expect).abs() / expect < 0.03, "{model:?}: mean {m} vs {expect}");
        }
    }

    #[test]
    fn deterministic_has_zero_variance() {
        let sampler = ServiceModel::Deterministic.sampler(50.0);
        let mut rng = RngStreams::new(1).stream("svc");
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 0.02);
        }
    }

    #[test]
    fn pareto_is_heavier_tailed_than_exponential() {
        let cap = 100.0;
        let pareto = ServiceModel::Pareto { shape: 2.1 }.sampler(cap);
        let exp = ServiceModel::Exponential.sampler(cap);
        let mut rng = RngStreams::new(2).stream("svc");
        let n = 200_000;
        let threshold = 10.0 / cap; // 10× the mean
        let pareto_tail = (0..n).filter(|_| pareto.sample(&mut rng) > threshold).count();
        let exp_tail = (0..n).filter(|_| exp.sample(&mut rng) > threshold).count();
        assert!(
            pareto_tail > exp_tail * 5,
            "pareto tail {pareto_tail} vs exponential tail {exp_tail}"
        );
    }

    #[test]
    fn validation() {
        assert!(ServiceModel::Exponential.validate().is_ok());
        assert!(ServiceModel::Deterministic.validate().is_ok());
        assert!(ServiceModel::Pareto { shape: 2.0 }.validate().is_ok());
        assert!(ServiceModel::Pareto { shape: 1.0 }.validate().is_err());
        assert!(ServiceModel::Pareto { shape: 0.5 }.validate().is_err());
        assert!(ServiceModel::Pareto { shape: f64::NAN }.validate().is_err());
    }

    #[test]
    fn samples_are_positive() {
        for model in [
            ServiceModel::Exponential,
            ServiceModel::Deterministic,
            ServiceModel::Pareto { shape: 3.0 },
        ] {
            let sampler = model.sampler(60.0);
            let mut rng = RngStreams::new(3).stream("svc");
            for _ in 0..1000 {
                assert!(sampler.sample(&mut rng) > 0.0);
            }
        }
    }
}
