//! The named algorithm catalogue (paper §3 nomenclature).

use serde::{Deserialize, Serialize};

use crate::{PolicyKind, TierSpec, TtlKind};

/// A complete DNS scheduling algorithm: a server-selection policy plus a
/// TTL policy, named exactly as the paper names its combinations
/// (`DRR2-TTL/S_K`, `PRR-TTL/2`, plain `RR`, …).
///
/// # Examples
///
/// ```
/// use geodns_core::Algorithm;
///
/// assert_eq!(Algorithm::rr().name(), "RR");
/// assert_eq!(Algorithm::drr2_ttl_s_k().name(), "DRR2-TTL/S_K");
/// assert_eq!(Algorithm::prr2_ttl(2).name(), "PRR2-TTL/2");
/// assert_eq!(Algorithm::prr_ttl1().name(), "PRR-TTL/1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Algorithm {
    /// The server-selection policy.
    pub policy: PolicyKind,
    /// The TTL policy.
    pub ttl: TtlKind,
}

impl Algorithm {
    /// An arbitrary policy/TTL combination.
    #[must_use]
    pub fn new(policy: PolicyKind, ttl: TtlKind) -> Self {
        Algorithm { policy, ttl }
    }

    // --- The paper's named algorithms -----------------------------------

    /// Conventional round-robin with constant TTL (the lower bound).
    #[must_use]
    pub fn rr() -> Self {
        Self::new(PolicyKind::Rr, TtlKind::Constant)
    }

    /// Two-tier round-robin with constant TTL (the ICDCS'97 RR2).
    #[must_use]
    pub fn rr2() -> Self {
        Self::new(PolicyKind::Rr2, TtlKind::Constant)
    }

    /// `PRR-TTL/1`: probabilistic routing, single constant TTL.
    #[must_use]
    pub fn prr_ttl1() -> Self {
        Self::new(PolicyKind::Prr, TtlKind::Constant)
    }

    /// `PRR2-TTL/1`: two-tier probabilistic routing, constant TTL.
    #[must_use]
    pub fn prr2_ttl1() -> Self {
        Self::new(PolicyKind::Prr2, TtlKind::Constant)
    }

    /// `PRR-TTL/i`: probabilistic routing, adaptive TTL over `i` classes.
    #[must_use]
    pub fn prr_ttl(tiers: usize) -> Self {
        Self::new(
            PolicyKind::Prr,
            TtlKind::Adaptive { tiers: TierSpec::Classes(tiers), server_scaled: false },
        )
    }

    /// `PRR2-TTL/i`.
    #[must_use]
    pub fn prr2_ttl(tiers: usize) -> Self {
        Self::new(
            PolicyKind::Prr2,
            TtlKind::Adaptive { tiers: TierSpec::Classes(tiers), server_scaled: false },
        )
    }

    /// `PRR-TTL/K`: a distinct TTL per domain.
    #[must_use]
    pub fn prr_ttl_k() -> Self {
        Self::new(
            PolicyKind::Prr,
            TtlKind::Adaptive { tiers: TierSpec::PerDomain, server_scaled: false },
        )
    }

    /// `PRR2-TTL/K`.
    #[must_use]
    pub fn prr2_ttl_k() -> Self {
        Self::new(
            PolicyKind::Prr2,
            TtlKind::Adaptive { tiers: TierSpec::PerDomain, server_scaled: false },
        )
    }

    /// `DRR-TTL/S_i`: round-robin selection, TTL scaled by class weight
    /// *and* server capacity.
    #[must_use]
    pub fn drr_ttl_s(tiers: usize) -> Self {
        Self::new(
            PolicyKind::Rr,
            TtlKind::Adaptive { tiers: TierSpec::Classes(tiers), server_scaled: true },
        )
    }

    /// `DRR2-TTL/S_i`.
    #[must_use]
    pub fn drr2_ttl_s(tiers: usize) -> Self {
        Self::new(
            PolicyKind::Rr2,
            TtlKind::Adaptive { tiers: TierSpec::Classes(tiers), server_scaled: true },
        )
    }

    /// `DRR-TTL/S_K`.
    #[must_use]
    pub fn drr_ttl_s_k() -> Self {
        Self::new(
            PolicyKind::Rr,
            TtlKind::Adaptive { tiers: TierSpec::PerDomain, server_scaled: true },
        )
    }

    /// `DRR2-TTL/S_K`: the paper's strategy of choice under full TTL
    /// control.
    #[must_use]
    pub fn drr2_ttl_s_k() -> Self {
        Self::new(
            PolicyKind::Rr2,
            TtlKind::Adaptive { tiers: TierSpec::PerDomain, server_scaled: true },
        )
    }

    /// Capacity-scaled DAL with constant TTL (Figure 3's transplant).
    #[must_use]
    pub fn dal() -> Self {
        Self::new(PolicyKind::Dal, TtlKind::Constant)
    }

    /// Capacity-scaled MRL with constant TTL.
    #[must_use]
    pub fn mrl() -> Self {
        Self::new(PolicyKind::Mrl, TtlKind::Constant)
    }

    /// RTT-band proximity selection (extension, ROADMAP item 2): servers
    /// within `band_ms` of the best smoothed RTT compete on accumulated
    /// hidden load, capacity, and proximity. Pairs with the TTL/S_K
    /// adaptive-TTL scheme — proximity filtering only pays off when the
    /// hidden load behind each binding is also kept under control.
    #[must_use]
    pub fn rtt_band(band_ms: u32) -> Self {
        Self::new(
            PolicyKind::RttBand { band_ms },
            TtlKind::Adaptive { tiers: TierSpec::PerDomain, server_scaled: true },
        )
    }

    // --- Families used by the figures -----------------------------------

    /// Figure 1's deterministic family (strongest first).
    #[must_use]
    pub fn deterministic_family() -> Vec<Algorithm> {
        vec![
            Self::drr2_ttl_s_k(),
            Self::drr_ttl_s_k(),
            Self::drr2_ttl_s(2),
            Self::drr_ttl_s(2),
            Self::drr2_ttl_s(1),
            Self::drr_ttl_s(1),
        ]
    }

    /// Figure 2's probabilistic family (strongest first).
    #[must_use]
    pub fn probabilistic_family() -> Vec<Algorithm> {
        vec![
            Self::prr2_ttl_k(),
            Self::prr_ttl_k(),
            Self::prr2_ttl(2),
            Self::prr_ttl(2),
            Self::prr2_ttl1(),
            Self::prr_ttl1(),
        ]
    }

    /// The paper-style combined name.
    #[must_use]
    pub fn name(&self) -> String {
        match (self.policy, self.ttl) {
            // Plain names: the conventional algorithms with constant TTL.
            (PolicyKind::Rr, TtlKind::Constant) => "RR".to_string(),
            (PolicyKind::Rr2, TtlKind::Constant) => "RR2".to_string(),
            (PolicyKind::Dal, TtlKind::Constant) => "DAL".to_string(),
            (PolicyKind::Mrl, TtlKind::Constant) => "MRL".to_string(),
            (PolicyKind::Random, TtlKind::Constant) => "RAND".to_string(),
            (PolicyKind::WeightedRandom, TtlKind::Constant) => "WRAND".to_string(),
            (PolicyKind::LeastLoaded, TtlKind::Constant) => "LL".to_string(),
            // RTT-BAND subsumes its TTL scheme in the short name: the
            // family always rides TTL/S_K.
            (PolicyKind::RttBand { .. }, _) => "RTT-BAND".to_string(),
            // The deterministic family renames RR/RR2 to DRR/DRR2.
            (PolicyKind::Rr, ttl @ TtlKind::Adaptive { server_scaled: true, .. }) => {
                format!("DRR-{}", ttl.paper_name())
            }
            (PolicyKind::Rr2, ttl @ TtlKind::Adaptive { server_scaled: true, .. }) => {
                format!("DRR2-{}", ttl.paper_name())
            }
            (policy, ttl) => format!("{}-{}", policy.paper_name(), ttl.paper_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names_match() {
        assert_eq!(Algorithm::rr().name(), "RR");
        assert_eq!(Algorithm::rr2().name(), "RR2");
        assert_eq!(Algorithm::dal().name(), "DAL");
        assert_eq!(Algorithm::mrl().name(), "MRL");
        assert_eq!(Algorithm::prr_ttl1().name(), "PRR-TTL/1");
        assert_eq!(Algorithm::prr2_ttl1().name(), "PRR2-TTL/1");
        assert_eq!(Algorithm::prr_ttl(2).name(), "PRR-TTL/2");
        assert_eq!(Algorithm::prr2_ttl_k().name(), "PRR2-TTL/K");
        assert_eq!(Algorithm::drr_ttl_s(1).name(), "DRR-TTL/S_1");
        assert_eq!(Algorithm::drr2_ttl_s(2).name(), "DRR2-TTL/S_2");
        assert_eq!(Algorithm::drr_ttl_s_k().name(), "DRR-TTL/S_K");
        assert_eq!(Algorithm::drr2_ttl_s_k().name(), "DRR2-TTL/S_K");
        assert_eq!(Algorithm::rtt_band(400).name(), "RTT-BAND");
    }

    #[test]
    fn families_have_six_members_each() {
        assert_eq!(Algorithm::deterministic_family().len(), 6);
        assert_eq!(Algorithm::probabilistic_family().len(), 6);
    }

    #[test]
    fn family_names_are_unique() {
        let mut names: Vec<String> = Algorithm::deterministic_family()
            .iter()
            .chain(Algorithm::probabilistic_family().iter())
            .map(Algorithm::name)
            .collect();
        names.sort();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len);
    }

    #[test]
    fn unusual_combination_still_names_itself() {
        let a = Algorithm::new(
            PolicyKind::Prr,
            TtlKind::Adaptive { tiers: TierSpec::Classes(3), server_scaled: true },
        );
        assert_eq!(a.name(), "PRR-TTL/S_3");
    }
}
