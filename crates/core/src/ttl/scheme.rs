//! The realized TTL table for one configuration.

use crate::classifier::DomainClasses;
use crate::ttl::{normalization_scale, TtlKind};

/// The concrete TTL assignment: a base TTL per *TTL class* and a
/// multiplicative factor per server (`1` everywhere for the probabilistic
/// family, `α_i · ρ` for the deterministic `TTL/S_i` family).
///
/// Built by [`TtlScheme::build`] from the current hidden-load estimates and
/// rebuilt whenever the estimator updates.
///
/// # Examples
///
/// ```
/// use geodns_core::{DomainClasses, TierSpec, TtlKind, TtlScheme};
///
/// let weights = [30.0, 10.0, 5.0, 5.0];               // hidden loads
/// let classes = DomainClasses::build(&weights, TierSpec::PerDomain, 0.25);
/// let caps = [1.0, 0.5];                              // relative capacities
/// let kind = TtlKind::Adaptive { tiers: TierSpec::PerDomain, server_scaled: true };
/// let s = TtlScheme::build(kind, &classes, &weights, &caps, 240.0, true);
///
/// // Hotter domains get shorter TTLs; stronger servers get longer ones.
/// let hot_weak = s.ttl(classes.class_of(0), 1);
/// let hot_strong = s.ttl(classes.class_of(0), 0);
/// let cold_weak = s.ttl(classes.class_of(2), 1);
/// assert!(hot_weak < cold_weak);
/// assert!(hot_weak < hot_strong);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TtlScheme {
    base: Vec<f64>,
    server_factor: Vec<f64>,
}

impl TtlScheme {
    /// A constant-TTL scheme (`ttl` seconds for every answer).
    ///
    /// # Panics
    ///
    /// Panics unless `ttl` is positive and there is at least one server.
    #[must_use]
    pub fn constant(ttl: f64, n_servers: usize) -> Self {
        assert!(ttl > 0.0, "TTL must be positive, got {ttl}");
        assert!(n_servers > 0, "need at least one server");
        TtlScheme { base: vec![ttl], server_factor: vec![1.0; n_servers] }
    }

    /// Builds the TTL table for `kind` from the current classification and
    /// per-domain weight estimates.
    ///
    /// * `classes` — the TTL-differentiation classes (built with the same
    ///   `tiers` as `kind`; class weights drive the inverse proportion).
    /// * `weights` — per-domain hidden-load estimates (only used to size
    ///   the normalization: each domain contributes its expected TTL).
    /// * `relative_caps` — the servers' `α_i` (decreasing, `α_1 = 1`).
    /// * `ttl_const` — the constant-TTL baseline being matched (240 s).
    /// * `normalize` — when `false`, skips rate normalization and anchors
    ///   the hottest class at `ttl_const` (the paper's "naive" strawman,
    ///   kept for the ablation bench).
    ///
    /// # Panics
    ///
    /// Panics on empty inputs, non-positive weights/TTL, or a class count
    /// mismatch.
    #[must_use]
    pub fn build(
        kind: TtlKind,
        classes: &DomainClasses,
        weights: &[f64],
        relative_caps: &[f64],
        ttl_const: f64,
        normalize: bool,
    ) -> Self {
        assert!(!relative_caps.is_empty(), "need at least one server");
        assert!(ttl_const > 0.0, "baseline TTL must be positive");
        assert_eq!(classes.num_domains(), weights.len(), "weights/classes mismatch");

        let TtlKind::Adaptive { server_scaled, .. } = kind else {
            return Self::constant(ttl_const, relative_caps.len());
        };

        let n = relative_caps.len();
        let rho = relative_caps[0] / relative_caps[n - 1];
        let server_factor: Vec<f64> = if server_scaled {
            relative_caps.iter().map(|a| a * rho).collect()
        } else {
            vec![1.0; n]
        };
        let mean_factor: f64 = server_factor.iter().sum::<f64>() / n as f64;

        // Base TTL per class ∝ 1 / class weight; floor weights so a cold
        // class cannot produce an infinite TTL.
        let floor = 1e-9;
        let hottest = classes.class_weights().iter().cloned().fold(f64::MIN, f64::max).max(floor);
        let mut base: Vec<f64> =
            classes.class_weights().iter().map(|&w| hottest / w.max(floor)).collect();

        if normalize {
            // Per-domain expected TTL under a round-robin-like server visit
            // pattern (each server equally often).
            let expected: Vec<f64> = (0..classes.num_domains())
                .map(|d| base[classes.class_of(d)] * mean_factor)
                .collect();
            let target = classes.num_domains() as f64 / ttl_const;
            let scale = normalization_scale(&expected, target);
            for b in &mut base {
                *b *= scale;
            }
        } else {
            // Anchor the hottest class (base 1.0) at the baseline TTL.
            for b in &mut base {
                *b *= ttl_const;
            }
        }

        TtlScheme { base, server_factor }
    }

    /// The TTL (seconds) for an answer to a domain of TTL-class `class`
    /// mapped to server `server`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn ttl(&self, class: usize, server: usize) -> f64 {
        self.base[class] * self.server_factor[server]
    }

    /// Number of TTL classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.base.len()
    }

    /// Number of servers.
    #[must_use]
    pub fn num_servers(&self) -> usize {
        self.server_factor.len()
    }

    /// The smallest TTL any answer can carry.
    #[must_use]
    pub fn min_ttl(&self) -> f64 {
        let min_base = self.base.iter().cloned().fold(f64::INFINITY, f64::min);
        let min_factor = self.server_factor.iter().cloned().fold(f64::INFINITY, f64::min);
        min_base * min_factor
    }

    /// The largest TTL any answer can carry.
    #[must_use]
    pub fn max_ttl(&self) -> f64 {
        let max_base = self.base.iter().cloned().fold(f64::MIN, f64::max);
        let max_factor = self.server_factor.iter().cloned().fold(f64::MIN, f64::max);
        max_base * max_factor
    }

    /// The per-domain expected TTL (uniform server-visit average) — used by
    /// tests to verify rate normalization.
    #[must_use]
    pub fn expected_ttls(&self, classes: &DomainClasses) -> Vec<f64> {
        let mean_factor: f64 =
            self.server_factor.iter().sum::<f64>() / self.server_factor.len() as f64;
        (0..classes.num_domains()).map(|d| self.base[classes.class_of(d)] * mean_factor).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ttl::expected_address_rate;
    use crate::TierSpec;

    fn zipf_weights(k: usize) -> Vec<f64> {
        (0..k).map(|i| 100.0 / (i + 1) as f64).collect()
    }

    #[test]
    fn constant_scheme_is_flat() {
        let s = TtlScheme::constant(240.0, 7);
        for srv in 0..7 {
            assert_eq!(s.ttl(0, srv), 240.0);
        }
        assert_eq!(s.min_ttl(), 240.0);
        assert_eq!(s.max_ttl(), 240.0);
    }

    #[test]
    fn ttl_k_is_inverse_to_weight() {
        let w = zipf_weights(10);
        let classes = DomainClasses::build(&w, TierSpec::PerDomain, 0.1);
        let kind = TtlKind::Adaptive { tiers: TierSpec::PerDomain, server_scaled: false };
        let s = TtlScheme::build(kind, &classes, &w, &[1.0; 7], 240.0, true);
        // Domain 0 is 10× domain 9's weight → 10× shorter TTL.
        let t0 = s.ttl(classes.class_of(0), 0);
        let t9 = s.ttl(classes.class_of(9), 0);
        assert!((t9 / t0 - 10.0).abs() < 1e-9, "ratio {}", t9 / t0);
    }

    #[test]
    fn normalization_matches_baseline_rate() {
        let w = zipf_weights(20);
        for (tiers, scaled) in [
            (TierSpec::PerDomain, false),
            (TierSpec::PerDomain, true),
            (TierSpec::Classes(2), false),
            (TierSpec::Classes(2), true),
            (TierSpec::Classes(1), true),
        ] {
            let classes = DomainClasses::build(&w, tiers, 1.0 / 20.0);
            let kind = TtlKind::Adaptive { tiers, server_scaled: scaled };
            let caps = [1.0, 1.0, 0.8, 0.8, 0.5, 0.5, 0.5];
            let s = TtlScheme::build(kind, &classes, &w, &caps, 240.0, true);
            let rate = expected_address_rate(&s.expected_ttls(&classes));
            let target = 20.0 / 240.0;
            assert!((rate - target).abs() < 1e-9, "{kind:?}: rate {rate} vs target {target}");
        }
    }

    #[test]
    fn server_scaling_respects_capacity() {
        let w = zipf_weights(5);
        let classes = DomainClasses::build(&w, TierSpec::PerDomain, 0.2);
        let kind = TtlKind::Adaptive { tiers: TierSpec::PerDomain, server_scaled: true };
        let caps = [1.0, 0.8, 0.5];
        let s = TtlScheme::build(kind, &classes, &w, &caps, 240.0, true);
        // ρ = 2: weakest server's factor is α_N·ρ = 1, strongest is ρ = 2.
        let weak = s.ttl(0, 2);
        let strong = s.ttl(0, 0);
        assert!((strong / weak - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ttl_s1_varies_only_with_server() {
        let w = zipf_weights(5);
        let classes = DomainClasses::build(&w, TierSpec::Classes(1), 0.2);
        let kind = TtlKind::Adaptive { tiers: TierSpec::Classes(1), server_scaled: true };
        let caps = [1.0, 0.5];
        let s = TtlScheme::build(kind, &classes, &w, &caps, 240.0, true);
        assert_eq!(s.num_classes(), 1);
        // Normalized: E[TTL] = 240 → ttl(s) = 240 · α_s/mean(α).
        let mean_alpha = 0.75;
        assert!((s.ttl(0, 0) - 240.0 / mean_alpha).abs() < 1e-9);
        assert!((s.ttl(0, 1) - 240.0 * 0.5 / mean_alpha).abs() < 1e-9);
    }

    #[test]
    fn ttl1_unscaled_degenerates_to_constant() {
        let w = zipf_weights(8);
        let classes = DomainClasses::build(&w, TierSpec::Classes(1), 0.2);
        let kind = TtlKind::Adaptive { tiers: TierSpec::Classes(1), server_scaled: false };
        let s = TtlScheme::build(kind, &classes, &w, &[1.0; 4], 240.0, true);
        assert!((s.ttl(0, 0) - 240.0).abs() < 1e-9);
    }

    #[test]
    fn unnormalized_anchors_hottest_at_baseline() {
        let w = zipf_weights(10);
        let classes = DomainClasses::build(&w, TierSpec::PerDomain, 0.1);
        let kind = TtlKind::Adaptive { tiers: TierSpec::PerDomain, server_scaled: false };
        let s = TtlScheme::build(kind, &classes, &w, &[1.0; 3], 240.0, false);
        assert!((s.ttl(classes.class_of(0), 0) - 240.0).abs() < 1e-9);
        assert!(s.ttl(classes.class_of(9), 0) > 240.0);
    }

    #[test]
    fn min_max_bracket_all_entries() {
        let w = zipf_weights(6);
        let classes = DomainClasses::build(&w, TierSpec::PerDomain, 0.2);
        let kind = TtlKind::Adaptive { tiers: TierSpec::PerDomain, server_scaled: true };
        let caps = [1.0, 0.8, 0.35];
        let s = TtlScheme::build(kind, &classes, &w, &caps, 240.0, true);
        for c in 0..s.num_classes() {
            for srv in 0..s.num_servers() {
                let t = s.ttl(c, srv);
                assert!(t >= s.min_ttl() - 1e-12 && t <= s.max_ttl() + 1e-12);
            }
        }
    }
}
