//! Address-rate normalization across TTL schemes.
//!
//! "Since an arbitrary choice of TTL would lead to unfair performance
//! comparisons, for each adaptive TTL policy we have chosen the TTL values
//! in such a way that their average address request rates remain the same."
//! (paper §4.1)
//!
//! The model: a continuously active domain whose mappings carry expected
//! TTL `E_j` regenerates an address request every `E_j` seconds, so the
//! site-wide address-request rate is `Σ_j 1/E_j`. The constant-TTL baseline
//! produces `K / TTL_const`. Because every adaptive formula is linear in a
//! global scale factor, matching the two rates has a closed form.

/// The expected site-wide address-request rate (requests/s) for per-domain
/// expected TTLs.
///
/// # Panics
///
/// Panics if any TTL is non-positive.
#[must_use]
pub fn expected_address_rate(expected_ttls: &[f64]) -> f64 {
    expected_ttls
        .iter()
        .map(|&t| {
            assert!(t > 0.0, "expected TTL must be positive, got {t}");
            1.0 / t
        })
        .sum()
}

/// The factor `s` such that scaling every per-domain expected TTL by `s`
/// yields exactly `target_rate` address requests per second:
/// `Σ 1/(s·E_j) = target` ⇒ `s = (Σ 1/E_j) / target`.
///
/// # Panics
///
/// Panics if `target_rate` is not positive, the TTL list is empty, or any
/// TTL is non-positive.
#[must_use]
pub fn normalization_scale(expected_ttls: &[f64], target_rate: f64) -> f64 {
    assert!(!expected_ttls.is_empty(), "need at least one domain");
    assert!(
        target_rate.is_finite() && target_rate > 0.0,
        "target rate must be positive, got {target_rate}"
    );
    expected_address_rate(expected_ttls) / target_rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ttls_match_baseline() {
        // 20 domains at 240 s → rate = 20/240.
        let ttls = vec![240.0; 20];
        let rate = expected_address_rate(&ttls);
        assert!((rate - 20.0 / 240.0).abs() < 1e-12);
        // Already at target: scale = 1.
        assert!((normalization_scale(&ttls, 20.0 / 240.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_achieves_target_exactly() {
        let ttls = vec![10.0, 20.0, 40.0, 80.0];
        let target = 4.0 / 240.0;
        let s = normalization_scale(&ttls, target);
        let scaled: Vec<f64> = ttls.iter().map(|t| t * s).collect();
        assert!((expected_address_rate(&scaled) - target).abs() < 1e-12);
    }

    #[test]
    fn skewed_ttls_normalize_below_naive() {
        // Zipf-like inverse-weight TTLs: hot domains would otherwise inflate
        // the address rate, so normalization must raise all TTLs (s > 1)
        // relative to giving the hottest domain the baseline TTL.
        let weights = [10.0, 5.0, 2.0, 1.0];
        let naive: Vec<f64> = weights.iter().map(|w| 240.0 * weights[0] / w).collect();
        assert_eq!(naive[0], 240.0);
        let target = 4.0 / 240.0;
        let s = normalization_scale(&naive, target);
        assert!(s < 1.0, "inverse-weight TTLs ≥ 240 s yield a lower rate, so they shrink: s = {s}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ttl_panics() {
        let _ = expected_address_rate(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_panics() {
        let _ = normalization_scale(&[], 1.0);
    }
}
