//! Adaptive TTL assignment (the paper's §3 contribution).
//!
//! When the DNS answers an address request it returns both a server and a
//! TTL. The adaptive TTL family sizes that TTL so that *the subsequent
//! requests hidden behind each mapping consume a similar share of server
//! capacity*:
//!
//! * `TTL/i` (probabilistic family): domains are partitioned into `i`
//!   classes by hidden load weight; a class's TTL is inversely proportional
//!   to its average weight. `TTL/1` degenerates to a constant TTL; `TTL/K`
//!   gives every domain its own TTL, `TTL_j = (ω_max / ω_j) · TTL_min`.
//! * `TTL/S_i` (deterministic family): additionally proportional to the
//!   chosen server's capacity, `TTL_{ij} = (ω_max / ω_j) · α_i · ρ ·
//!   TTL_min`, with `ρ = C_1/C_N` so the weakest server's factor is 1.
//!
//! Every adaptive scheme is **rate-normalized**: TTL levels are scaled so
//! the expected address-request rate matches the constant-TTL baseline
//! (240 s), the paper's fairness requirement for comparisons.

mod normalize;
mod scheme;

pub use normalize::{expected_address_rate, normalization_scale};
pub use scheme::TtlScheme;

use serde::{Deserialize, Serialize};

use crate::TierSpec;

/// Which TTL policy the DNS runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TtlKind {
    /// One fixed TTL for every answer (the conventional scheme; paper
    /// default 240 s).
    Constant,
    /// The adaptive family. `tiers` picks the domain partition (the `i` of
    /// `TTL/i`); `server_scaled` selects the deterministic `TTL/S_i`
    /// variant that also scales by the chosen server's capacity.
    Adaptive {
        /// Domain classes used for TTL differentiation.
        tiers: TierSpec,
        /// Whether the TTL additionally scales with server capacity.
        server_scaled: bool,
    },
}

impl TtlKind {
    /// The paper's name fragment for this kind: `TTL/1`, `TTL/2`, `TTL/K`,
    /// `TTL/S_1`, `TTL/S_2`, `TTL/S_K`, …
    #[must_use]
    pub fn paper_name(&self) -> String {
        match *self {
            TtlKind::Constant => "TTL/1".to_string(),
            TtlKind::Adaptive { tiers, server_scaled } => {
                let tier = match tiers {
                    TierSpec::Classes(n) => n.to_string(),
                    TierSpec::PerDomain => "K".to_string(),
                };
                if server_scaled {
                    format!("TTL/S_{tier}")
                } else {
                    format!("TTL/{tier}")
                }
            }
        }
    }

    /// Whether this kind adapts to the hidden load at all.
    #[must_use]
    pub fn is_adaptive(&self) -> bool {
        matches!(self, TtlKind::Adaptive { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names() {
        assert_eq!(TtlKind::Constant.paper_name(), "TTL/1");
        assert_eq!(
            TtlKind::Adaptive { tiers: TierSpec::Classes(2), server_scaled: false }.paper_name(),
            "TTL/2"
        );
        assert_eq!(
            TtlKind::Adaptive { tiers: TierSpec::PerDomain, server_scaled: false }.paper_name(),
            "TTL/K"
        );
        assert_eq!(
            TtlKind::Adaptive { tiers: TierSpec::Classes(1), server_scaled: true }.paper_name(),
            "TTL/S_1"
        );
        assert_eq!(
            TtlKind::Adaptive { tiers: TierSpec::PerDomain, server_scaled: true }.paper_name(),
            "TTL/S_K"
        );
    }

    #[test]
    fn adaptivity_flag() {
        assert!(!TtlKind::Constant.is_adaptive());
        assert!(
            TtlKind::Adaptive { tiers: TierSpec::Classes(1), server_scaled: true }.is_adaptive()
        );
    }
}
