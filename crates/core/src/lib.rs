//! # geodns-core — Adaptive-TTL DNS load balancing
//!
//! A faithful, from-scratch reproduction of
//! *"Dynamic Load Balancing in Geographically Distributed Heterogeneous Web
//! Servers"* (Colajanni, Cardellini, Yu — ICDCS 1998): the **adaptive TTL**
//! class of DNS scheduling algorithms, the full simulation model the paper
//! evaluates them on, and an experiment runner that regenerates every table
//! and figure.
//!
//! ## The problem
//!
//! A distributed Web site puts one DNS in front of `N` heterogeneous
//! servers. Name-server caching means the DNS directly routes only a few
//! percent of requests — each answer it gives keeps steering an invisible
//! stream of follow-up requests (the domain's *hidden load*) for a TTL
//! period. With client demand Zipf-skewed across domains and servers of
//! unequal capacity, round-robin melts down.
//!
//! ## The paper's idea
//!
//! Pick the TTL per answer so every mapping carries a similar amount of
//! *work per unit of server capacity*: TTL inversely proportional to the
//! requesting domain's hidden load weight ([`TtlKind::Adaptive`]), and — in
//! the deterministic `TTL/S_*` family — proportional to the chosen server's
//! capacity.
//!
//! ## Quick start
//!
//! ```
//! use geodns_core::{run_simulation, Algorithm, SimConfig};
//! use geodns_server::HeterogeneityLevel;
//!
//! // The paper's champion vs the classic baseline, on a 20%-heterogeneous
//! // site (shortened run for the doctest).
//! let mut cfg = SimConfig::quick(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
//! cfg.duration_s = 300.0;
//! cfg.warmup_s = 60.0;
//! let adaptive = run_simulation(&cfg).unwrap();
//!
//! cfg.algorithm = Algorithm::rr();
//! let rr = run_simulation(&cfg).unwrap();
//!
//! // The adaptive scheme keeps the worst server cooler.
//! assert!(adaptive.prob_max_util_lt(0.98) >= rr.prob_max_util_lt(0.98) * 0.8);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`policies`] | RR, RR2, PRR, PRR2, DAL, MRL + baselines |
//! | [`ttl`] | `TTL/i`, `TTL/K`, `TTL/S_i`, `TTL/S_K` + rate normalization |
//! | [`Algorithm`] | the paper's named combinations |
//! | [`SimConfig`] | Table 1/Table 2 defaults, every evaluation knob |
//! | [`World`] / [`run_simulation`] | the event-driven model |
//! | [`Experiment`] / [`run_all`] | parallel sweeps for the benches |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod classifier;
mod client_cache;
mod clients;
mod config;
mod estimator;
mod experiment;
mod failover;
pub mod obs;
pub mod policies;
mod replay;
mod replication;
mod report;
mod scheduler;
mod service;
mod shard;
mod timeline;
pub mod ttl;
mod world;

pub use algorithm::Algorithm;
pub use classifier::{DomainClasses, TierSpec};
pub use client_cache::ClientCacheModel;
pub use config::{ServerSpec, ShardSpec, SimConfig};
pub use estimator::{EstimatorKind, HiddenLoadEstimator};
pub use experiment::{format_table, run_all, run_all_with_jobs, Experiment};
pub use failover::{FailoverModel, FailureConfig};
pub use obs::{
    DnsDecision, JsonlTracer, MuxProbe, NoopProbe, ObsConfig, ObsCounters, ObsSnapshot, Probe,
    QueueEvent,
};
pub use policies::{
    Dal, LeastLoaded, Mrl, PolicyKind, ProbabilisticRr, ProbabilisticRr2, RandomChoice, RoundRobin,
    RoundRobin2, RttBand, RttInfo, SchedCtx, SelectionPolicy, WeightedRandom, DEFAULT_BAND_MS,
    UNKNOWN_SERVER_NICENESS_MS,
};
pub use replay::run_trace;
pub use replication::{run_replications, ReplicationSummary};
pub use report::{LatencySummary, SimReport};
pub use scheduler::DnsScheduler;
pub use service::{ServiceModel, ServiceSampler};
pub use timeline::Timeline;
pub use ttl::{TtlKind, TtlScheme};
pub use world::{run_simulation, run_simulation_metered, RunMetrics, World};

// Re-export the substrate types a downstream user needs to drive the API.
pub use geodns_nameserver::{MinTtlBehavior, NsLookup};
pub use geodns_server::{CapacityPlan, HeterogeneityLevel};
pub use geodns_simcore::QueueKind;
pub use geodns_workload::{
    ClientDistribution, LatencyModel, LatencySpec, RateProfile, SessionModel, Trace, TraceSession,
    WorkloadSpec,
};
