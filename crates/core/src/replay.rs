//! Trace replay: run a frozen request stream through the full system.
//!
//! [`run_trace`] feeds a [`Trace`] (recorded or synthetic) through the
//! same servers/name-server/DNS machinery as the live generator, but with
//! *every* random workload quantity predetermined. Two algorithms replayed
//! on the same trace therefore see the **identical** request stream —
//! stronger than common random numbers, and the natural way to drive the
//! model from measured logs.
//!
//! Semantics: sessions start at their trace times (open loop across
//! sessions); within a session, page `i+1` is issued one recorded think
//! time after page `i`'s last hit completes (closed loop within the
//! session, so queueing still feeds back into pacing).

use geodns_nameserver::NsCache;
use geodns_server::{AlarmMonitor, Hit, Signal, WebServer};
use geodns_simcore::stats::Tally;
use geodns_simcore::{Engine, RngStreams, SimTime};
use geodns_workload::Trace;

use crate::service::ServiceSampler;
use crate::{DnsScheduler, HiddenLoadEstimator, SimConfig, SimReport};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    SessionStart { session: u32 },
    IssuePage { session: u32 },
    Departure { server: u32 },
    UtilSample,
    Collect,
    SignalArrive { server: u32, signal: Signal },
    WarmupEnd,
    Horizon,
}

#[derive(Debug, Clone, Copy)]
struct SessionState {
    domain: u32,
    server: u32,
    next_page: u32,
    page_issued_at: SimTime,
}

/// Replays `trace` under `config`'s algorithm and site, returning the
/// usual report. The measured span is `[config.warmup_s, config.warmup_s +
/// config.duration_s)`; the trace should cover it.
///
/// `config.workload` is used only for the domain map (client → domain) and
/// the estimator's nominal weights; all timing randomness comes from the
/// trace. Session metrics that depend on the live generator
/// (`dns_control_fraction`'s hit attribution) are computed the same way.
///
/// # Errors
///
/// Returns the first configuration or trace problem found.
pub fn run_trace(config: &SimConfig, trace: &Trace) -> Result<SimReport, String> {
    config.validate()?;
    trace.validate()?;
    let workload = config.workload.build()?;
    let plan = config.servers.plan(config.total_capacity)?;
    let streams = RngStreams::new(config.seed);

    let n_servers = plan.num_servers();
    let n_domains = workload.num_domains();
    for s in &trace.sessions {
        if s.client >= workload.num_clients() {
            return Err(format!(
                "trace client {} outside the workload's {} clients",
                s.client,
                workload.num_clients()
            ));
        }
    }

    let mut servers: Vec<WebServer> = (0..n_servers)
        .map(|i| WebServer::new(i, plan.absolute(i), n_domains, SimTime::ZERO))
        .collect::<Result<_, _>>()?;
    let service: Vec<ServiceSampler> =
        (0..n_servers).map(|i| config.service.sampler(plan.absolute(i))).collect();
    let mut alarms: Vec<AlarmMonitor> = (0..n_servers)
        .map(|_| AlarmMonitor::new(config.alarm_threshold, config.alarm_hysteresis))
        .collect::<Result<_, _>>()?;
    let mut ns = NsCache::new(n_domains, config.ns_behavior);
    let estimator = HiddenLoadEstimator::new(config.estimator, workload.nominal_rates());
    let mut dns = DnsScheduler::new(
        config.algorithm,
        &plan,
        estimator,
        config.gamma(),
        config.ttl_const_s,
        config.normalize_ttl,
        streams.stream("dns-policy"),
    );
    let mut rng_service = streams.stream("service");

    let mut states: Vec<SessionState> = trace
        .sessions
        .iter()
        .map(|s| SessionState {
            domain: workload.domain_of_client(s.client).index() as u32,
            server: 0,
            next_page: 0,
            page_issued_at: SimTime::ZERO,
        })
        .collect();
    // Map an in-flight page's "last hit" back to its session: tag hits
    // with the session index in `Hit::client`.
    let mut engine: Engine<Ev> = Engine::with_capacity(trace.len().min(1 << 16));

    for (i, s) in trace.sessions.iter().enumerate() {
        engine.schedule_at(SimTime::from_secs(s.start_s), Ev::SessionStart { session: i as u32 });
    }
    engine.schedule_in(config.util_interval_s, Ev::UtilSample);
    if let Some(interval) = dns.estimator().collect_interval() {
        engine.schedule_in(interval, Ev::Collect);
    }
    engine.schedule_in(config.warmup_s, Ev::WarmupEnd);
    engine.schedule_in(config.warmup_s + config.duration_s, Ev::Horizon);

    let mut measuring = false;
    let mut max_util_samples: Vec<f64> = Vec::new();
    let mut per_server_util = vec![Tally::new(); n_servers];
    let mut page_response = Tally::new();
    let mut sessions_measured = 0u64;
    let mut dns_queries = 0u64;
    let mut hits_completed = 0u64;
    let mut alarms_measured = 0u64;

    while let Some((now, ev)) = engine.step() {
        match ev {
            Ev::SessionStart { session } => {
                let domain = states[session as usize].domain as usize;
                let server = match ns.lookup(domain, now) {
                    Some(server) => server,
                    None => {
                        let backlogs: Vec<f64> =
                            servers.iter().map(WebServer::normalized_backlog).collect();
                        let (server, ttl) = dns.resolve(domain, now, &backlogs);
                        ns.insert(domain, server, ttl, now);
                        if measuring {
                            dns_queries += 1;
                        }
                        server
                    }
                };
                states[session as usize].server = server as u32;
                if measuring {
                    sessions_measured += 1;
                }
                issue_page(
                    session,
                    now,
                    trace,
                    &mut states,
                    &mut servers,
                    &service,
                    &mut rng_service,
                    &mut engine,
                );
            }
            Ev::IssuePage { session } => {
                issue_page(
                    session,
                    now,
                    trace,
                    &mut states,
                    &mut servers,
                    &service,
                    &mut rng_service,
                    &mut engine,
                );
            }
            Ev::Departure { server } => {
                let s = server as usize;
                let (hit, more) = servers[s].depart(now);
                if more {
                    let svc = service[s].sample(&mut rng_service);
                    engine.schedule_in(svc, Ev::Departure { server });
                }
                if measuring {
                    hits_completed += 1;
                }
                if hit.last_of_page {
                    let session = hit.client as u32; // session index, see above
                    let st = states[hit.client];
                    if measuring {
                        page_response.record(now.since(st.page_issued_at));
                    }
                    let done_pages = st.next_page as usize;
                    let spec = &trace.sessions[hit.client];
                    if done_pages < spec.hits.len() {
                        let think = spec.thinks[done_pages - 1];
                        engine.schedule_in(think, Ev::IssuePage { session });
                    }
                }
            }
            Ev::UtilSample => {
                let mut max_util: f64 = 0.0;
                for s in 0..n_servers {
                    let u = servers[s].sample_utilization(now);
                    max_util = max_util.max(u);
                    if measuring {
                        per_server_util[s].record(u);
                    }
                    if let Some(signal) = alarms[s].observe(u) {
                        engine.schedule_in(
                            config.feedback_delay_s,
                            Ev::SignalArrive { server: s as u32, signal },
                        );
                    }
                }
                if measuring {
                    max_util_samples.push(max_util);
                }
                engine.schedule_in(config.util_interval_s, Ev::UtilSample);
            }
            Ev::Collect => {
                if let Some(interval) = dns.estimator().collect_interval() {
                    let mut counts = vec![0u64; n_domains];
                    for server in &mut servers {
                        for (total, c) in counts.iter_mut().zip(server.take_domain_counts()) {
                            *total += c;
                        }
                    }
                    dns.ingest(&counts, interval);
                    engine.schedule_in(interval, Ev::Collect);
                }
            }
            Ev::SignalArrive { server, signal } => {
                if measuring && signal == Signal::Alarm {
                    alarms_measured += 1;
                }
                dns.signal(server as usize, signal);
            }
            Ev::WarmupEnd => {
                measuring = true;
                ns.reset_stats();
            }
            Ev::Horizon => engine.clear_pending(),
        }
    }

    max_util_samples.sort_by(|a, b| a.total_cmp(b));
    Ok(SimReport {
        algorithm: config.algorithm.name(),
        seed: config.seed,
        heterogeneity_pct: plan.max_difference() * 100.0,
        measured_span_s: config.duration_s,
        max_util_samples,
        per_server_mean_util: per_server_util.iter().map(Tally::mean).collect(),
        page_response_mean_s: page_response.mean(),
        page_response_p95_s: 0.0, // not tracked in replay mode
        sessions: sessions_measured,
        dns_queries,
        address_request_rate: dns_queries as f64 / config.duration_s,
        dns_control_fraction: 0.0, // hit attribution not tracked in replay mode
        hits_completed,
        alarms: alarms_measured,
        ns_miss_fraction: ns.stats().miss_fraction(),
        page_response_hot_mean_s: 0.0,
        page_response_normal_mean_s: 0.0,
        client_cache_hits: 0,
        hits_failed: 0, // fault injection not modeled in replay mode
        rebinds: 0,
        per_server_availability: vec![1.0; n_servers],
        time_to_rebalance_mean_s: 0.0,
        hits_issued_total: 0, // conservation ledger not tracked in replay mode
        hits_served_total: 0,
        hits_failed_total: 0,
        hits_in_flight: 0,
        timeline: None,
        obs: None,     // recorders are not wired into replay mode
        latency: None, // the latency model is not wired into replay mode
    })
}

#[allow(clippy::too_many_arguments)]
fn issue_page(
    session: u32,
    now: SimTime,
    trace: &Trace,
    states: &mut [SessionState],
    servers: &mut [WebServer],
    service: &[ServiceSampler],
    rng_service: &mut geodns_simcore::StreamRng,
    engine: &mut Engine<Ev>,
) {
    let idx = session as usize;
    let spec = &trace.sessions[idx];
    let page = states[idx].next_page as usize;
    debug_assert!(page < spec.hits.len(), "page index in range");
    states[idx].next_page += 1;
    states[idx].page_issued_at = now;
    let server = states[idx].server as usize;
    let hits = spec.hits[page];
    for i in 0..hits {
        let hit = Hit {
            client: idx, // session index: recovered at departure
            domain: states[idx].domain as usize,
            last_of_page: i + 1 == hits,
        };
        if servers[server].arrive(hit, now) {
            let svc = service[server].sample(rng_service);
            engine.schedule_in(svc, Ev::Departure { server: server as u32 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use geodns_server::HeterogeneityLevel;

    fn config(algorithm: Algorithm) -> SimConfig {
        let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
        cfg.duration_s = 900.0;
        cfg.warmup_s = 150.0;
        cfg.seed = 61;
        cfg
    }

    fn trace_for(cfg: &SimConfig) -> Trace {
        let workload = cfg.workload.build().unwrap();
        Trace::generate(&workload, cfg.warmup_s + cfg.duration_s, 424_242)
    }

    #[test]
    fn replay_runs_and_is_deterministic() {
        let cfg = config(Algorithm::drr2_ttl_s_k());
        let trace = trace_for(&cfg);
        let a = run_trace(&cfg, &trace).unwrap();
        let b = run_trace(&cfg, &trace).unwrap();
        assert_eq!(a, b);
        assert!(a.hits_completed > 10_000);
        assert!(!a.max_util_samples.is_empty());
        assert!(a.mean_util() > 0.3);
    }

    #[test]
    fn same_trace_different_algorithms_same_demand() {
        let cfg_rr = config(Algorithm::rr());
        let trace = trace_for(&cfg_rr);
        let mut cfg_ad = cfg_rr.clone();
        cfg_ad.algorithm = Algorithm::drr2_ttl_s_k();

        let rr = run_trace(&cfg_rr, &trace).unwrap();
        let adaptive = run_trace(&cfg_ad, &trace).unwrap();
        // Identical offered stream: hit totals within the slack created by
        // queueing-dependent page pacing.
        let ratio = rr.hits_completed as f64 / adaptive.hits_completed as f64;
        assert!((0.93..1.07).contains(&ratio), "hit ratio {ratio}");
        // And the paper's ordering holds on a frozen stream too.
        assert!(adaptive.p98() > rr.p98(), "adaptive {} vs RR {}", adaptive.p98(), rr.p98());
    }

    #[test]
    fn trace_outside_workload_rejected() {
        let cfg = config(Algorithm::rr());
        let mut trace = trace_for(&cfg);
        trace.sessions[0].client = 10_000;
        assert!(run_trace(&cfg, &trace).is_err());
    }

    #[test]
    fn invalid_trace_rejected() {
        let cfg = config(Algorithm::rr());
        let mut trace = trace_for(&cfg);
        trace.sessions[0].hits.clear();
        trace.sessions[0].thinks.clear();
        assert!(run_trace(&cfg, &trace).is_err());
    }
}
