//! Experiment runner: parallel sweeps and table formatting.

use crate::{run_simulation, SimConfig, SimReport};

/// Runs every configuration, in parallel across OS threads (one run is
/// single-threaded; sweeps are embarrassingly parallel). Results come back
/// in input order.
///
/// # Errors
///
/// Returns the first configuration error encountered.
///
/// # Examples
///
/// ```
/// use geodns_core::{run_all, Algorithm, SimConfig};
/// use geodns_server::HeterogeneityLevel;
///
/// let mut a = SimConfig::quick(Algorithm::rr(), HeterogeneityLevel::H20);
/// a.duration_s = 60.0; a.warmup_s = 15.0;
/// let mut b = a.clone();
/// b.algorithm = Algorithm::prr_ttl1();
/// let reports = run_all(&[a, b]).unwrap();
/// assert_eq!(reports.len(), 2);
/// assert_eq!(reports[0].algorithm, "RR");
/// ```
pub fn run_all(configs: &[SimConfig]) -> Result<Vec<SimReport>, String> {
    run_all_with_jobs(configs, env_jobs())
}

/// The `GEODNS_JOBS` worker cap: unset, `0`, or unparsable all mean "no
/// cap" (use every core), so the variable can be exported unconditionally
/// in CI scripts.
fn env_jobs() -> Option<usize> {
    std::env::var("GEODNS_JOBS").ok().and_then(|v| v.parse::<usize>().ok()).filter(|&j| j > 0)
}

/// [`run_all`] with an explicit cap on worker threads. `None` uses every
/// available core (capped by `GEODNS_JOBS` when callers go through
/// [`run_all`]); `Some(1)` runs serially on the calling thread. The cap
/// matters when each config is itself sharded
/// ([`ShardSpec`](crate::ShardSpec)): sweep-level and shard-level threads
/// multiply, so a sweep of S-shard configs wants `jobs ≈ cores / S`.
/// Results come back in input order regardless of the cap or completion
/// order (workers send `(index, result)` pairs; the receiver reorders).
///
/// # Errors
///
/// Returns the first configuration error encountered.
pub fn run_all_with_jobs(
    configs: &[SimConfig],
    jobs: Option<usize>,
) -> Result<Vec<SimReport>, String> {
    let threads = jobs
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(4)
        })
        .min(configs.len().max(1));

    if threads <= 1 || configs.len() <= 1 {
        return configs.iter().map(run_simulation).collect();
    }

    // Workers pull indices from a shared counter and send `(index, result)`
    // pairs down an mpsc channel; the receiving end reorders into input
    // order. Lock-free on the result path — no Mutex over the output Vec.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<SimReport, String>)>();

    crossbeam::scope(|scope| {
        let next = &next;
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                if tx.send((i, run_simulation(&configs[i]))).is_err() {
                    break;
                }
            });
        }
    })
    .expect("sweep worker panicked");
    drop(tx);

    let mut results: Vec<Option<Result<SimReport, String>>> = Vec::new();
    results.resize_with(configs.len(), || None);
    for (i, result) in rx {
        results[i] = Some(result);
    }
    results.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// A labelled experiment: named rows, each a config to run.
///
/// Thin convenience for the bench harness: run everything, keep the labels
/// attached.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// A human-readable experiment id (e.g. `"fig1"`).
    pub id: String,
    /// `(label, config)` rows.
    pub rows: Vec<(String, SimConfig)>,
}

impl Experiment {
    /// Creates an experiment.
    #[must_use]
    pub fn new(id: impl Into<String>) -> Self {
        Experiment { id: id.into(), rows: Vec::new() }
    }

    /// Adds a labelled configuration.
    pub fn push(&mut self, label: impl Into<String>, config: SimConfig) {
        self.rows.push((label.into(), config));
    }

    /// Runs all rows in parallel and returns `(label, report)` pairs.
    ///
    /// # Errors
    ///
    /// Returns the first configuration error encountered.
    pub fn run(&self) -> Result<Vec<(String, SimReport)>, String> {
        let configs: Vec<SimConfig> = self.rows.iter().map(|(_, c)| c.clone()).collect();
        let reports = run_all(&configs)?;
        Ok(self.rows.iter().map(|(label, _)| label.clone()).zip(reports).collect())
    }
}

/// Formats a simple aligned text table: `header` then one row per entry.
/// Used by the figure-regeneration benches to print paper-style series.
#[must_use]
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header.iter().map(|s| (*s).to_string()).collect(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use geodns_server::HeterogeneityLevel;

    fn tiny(algorithm: Algorithm) -> SimConfig {
        let mut cfg = SimConfig::quick(algorithm, HeterogeneityLevel::H20);
        cfg.duration_s = 60.0;
        cfg.warmup_s = 15.0;
        cfg
    }

    #[test]
    fn parallel_matches_serial() {
        let configs =
            vec![tiny(Algorithm::rr()), tiny(Algorithm::prr_ttl1()), tiny(Algorithm::dal())];
        let parallel = run_all(&configs).unwrap();
        let serial: Vec<_> = configs.iter().map(|c| run_simulation(c).unwrap()).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn jobs_cap_preserves_input_order_and_results() {
        // Distinct seeds make any reordering visible in the reports.
        let configs: Vec<SimConfig> = (0..5)
            .map(|i| {
                let mut c = tiny(Algorithm::rr());
                c.seed = 100 + i;
                c
            })
            .collect();
        let serial = run_all_with_jobs(&configs, Some(1)).unwrap();
        for jobs in [2, 3, 64] {
            let capped = run_all_with_jobs(&configs, Some(jobs)).unwrap();
            assert_eq!(capped, serial, "jobs = {jobs}");
        }
        for (cfg, report) in configs.iter().zip(&serial) {
            assert_eq!(report.seed, cfg.seed, "input order held");
        }
    }

    #[test]
    fn experiment_keeps_labels() {
        let mut e = Experiment::new("test");
        e.push("RR", tiny(Algorithm::rr()));
        e.push("DAL", tiny(Algorithm::dal()));
        let results = e.run().unwrap();
        assert_eq!(results[0].0, "RR");
        assert_eq!(results[0].1.algorithm, "RR");
        assert_eq!(results[1].0, "DAL");
    }

    #[test]
    fn error_propagates() {
        let mut bad = tiny(Algorithm::rr());
        bad.duration_s = -5.0;
        assert!(run_all(&[bad]).is_err());
    }

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["name", "x"],
            &[vec!["a".into(), "1.00".into()], vec!["longer".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.00"));
    }
}
