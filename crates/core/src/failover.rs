//! Fault-injection configuration: when servers crash and how clients react.

use geodns_server::FailureSpec;
use serde::{Deserialize, Serialize};

/// What a client does when its page lands on (or is dropped by) a dead
/// server.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum FailoverModel {
    /// Paper-faithful: the failed page is abandoned and the session stays
    /// pinned to its mapping until the TTL expires naturally — short-TTL
    /// schemes therefore recover faster, which is exactly what the failure
    /// sweep measures.
    #[default]
    PinUntilTtl,
    /// The client drops its binding, waits `backoff_s`, re-resolves (the
    /// name-server cache may still pin it to the dead server until the TTL
    /// runs out), and retries the failed page.
    RetryAfterBackoff {
        /// Seconds between the failure and the retry's re-resolution.
        backoff_s: f64,
    },
}

impl FailoverModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns "must be finite" for a NaN/∞ backoff and "must be >= 0 s"
    /// for a negative one — distinct messages, so a propagated-NaN bug
    /// upstream is not misreported as a sign error (same non-finite
    /// discipline as `Estimator::ingest`).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            FailoverModel::PinUntilTtl => Ok(()),
            FailoverModel::RetryAfterBackoff { backoff_s } => {
                if !backoff_s.is_finite() {
                    Err(format!("failover backoff must be finite, got {backoff_s}"))
                } else if *backoff_s < 0.0 {
                    Err(format!("failover backoff must be >= 0 s, got {backoff_s}"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// The fault-injection knob of a simulation run. Disabled by default: the
/// paper's servers never fail, and a run with `enabled = false` is
/// event-for-event identical to one built before this extension existed
/// (the failure RNG stream is separate and never drawn from).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureConfig {
    /// Master switch; everything below is ignored when `false`.
    #[serde(default)]
    pub enabled: bool,
    /// Per-server crash/repair means (exponential MTBF/MTTR).
    #[serde(default = "default_spec")]
    pub spec: FailureSpec,
    /// Client-side failover semantics.
    #[serde(default)]
    pub failover: FailoverModel,
}

fn default_spec() -> FailureSpec {
    FailureSpec { mtbf_s: 3600.0, mttr_s: 120.0 }
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig { enabled: false, spec: default_spec(), failover: FailoverModel::default() }
    }
}

impl FailureConfig {
    /// Validates the configuration (only when enabled — a disabled block
    /// is inert whatever it contains, but garbage parameters are still
    /// rejected to catch typos early).
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.spec.validate()?;
        self.failover.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_valid() {
        let cfg = FailureConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.failover, FailoverModel::PinUntilTtl);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut cfg = FailureConfig::default();
        cfg.spec.mtbf_s = -1.0;
        assert!(cfg.validate().is_err());

        let cfg = FailureConfig {
            failover: FailoverModel::RetryAfterBackoff { backoff_s: -2.0 },
            ..FailureConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains(">= 0 s"));

        // NaN/∞ are a different bug than a sign error and must say so.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let cfg = FailureConfig {
                failover: FailoverModel::RetryAfterBackoff { backoff_s: bad },
                ..FailureConfig::default()
            };
            let msg = cfg.validate().unwrap_err();
            assert!(msg.contains("must be finite"), "non-finite {bad} misreported: {msg}");
        }

        let cfg = FailureConfig {
            enabled: true,
            spec: FailureSpec { mtbf_s: 600.0, mttr_s: 60.0 },
            failover: FailoverModel::RetryAfterBackoff { backoff_s: 5.0 },
        };
        assert!(cfg.validate().is_ok());
    }
}
