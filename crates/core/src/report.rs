//! The output of one simulation run.

use serde::{Deserialize, Serialize};

use crate::obs::ObsSnapshot;
use crate::Timeline;

/// Summary of one simulation run — everything the paper's figures read off,
/// plus operational metrics a practitioner would want.
///
/// The headline series is `max_util_samples`: the maximum server
/// utilization observed at each utilization-check instant after warm-up.
/// Its empirical CDF is the paper's "cumulative frequency of the maximum
/// utilization" (Figures 1–2), and `P(maxU < 0.98)` is the Figures 3–7
/// y-axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// The paper-style algorithm name (`"DRR2-TTL/S_K"`, …).
    pub algorithm: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Heterogeneity level as a percentage (Table 2 measure).
    pub heterogeneity_pct: f64,
    /// Measured span (after warm-up), seconds.
    pub measured_span_s: f64,
    /// Per-interval maximum server utilization, **sorted ascending**.
    pub max_util_samples: Vec<f64>,
    /// Mean utilization per server over the measured span.
    pub per_server_mean_util: Vec<f64>,
    /// Mean page response time (issue → last hit completed), seconds.
    pub page_response_mean_s: f64,
    /// 95th-percentile page response time, seconds.
    pub page_response_p95_s: f64,
    /// Completed client sessions.
    pub sessions: u64,
    /// Address requests that reached the DNS.
    pub dns_queries: u64,
    /// DNS address-request rate over the measured span (requests/s) — the
    /// quantity the TTL normalization holds constant across schemes.
    pub address_request_rate: f64,
    /// Fraction of hits whose session was directly routed by the DNS (the
    /// paper observes this is "often below 4%").
    pub dns_control_fraction: f64,
    /// Hits completed during the measured span.
    pub hits_completed: u64,
    /// Alarm signals raised during the measured span.
    pub alarms: u64,
    /// Name-server cache miss fraction over the measured span.
    pub ns_miss_fraction: f64,
    /// Mean page response for clients of *hot* domains (γ rule), seconds.
    #[serde(default)]
    pub page_response_hot_mean_s: f64,
    /// Mean page response for clients of *normal* domains, seconds.
    #[serde(default)]
    pub page_response_normal_mean_s: f64,
    /// Sessions resolved from the client's own cache (0 unless a client
    /// cache model is enabled).
    #[serde(default)]
    pub client_cache_hits: u64,
    /// Hits that failed during the measured span because their server was
    /// down — issued against a dead server, or dropped from its queue by a
    /// crash. Always 0 without fault injection.
    #[serde(default)]
    pub hits_failed: u64,
    /// Failure-driven rebinds during the measured span: resolutions that
    /// moved a client off a server the world knows is dead.
    #[serde(default)]
    pub rebinds: u64,
    /// Fraction of the measured span each server was up (all 1.0 without
    /// fault injection).
    #[serde(default)]
    pub per_server_availability: Vec<f64>,
    /// Mean seconds from a repair completing (within the measured span) to
    /// the first hit arriving at the recovered server — how quickly the
    /// scheme rebalances traffic back. 0 when no repair was observed.
    #[serde(default)]
    pub time_to_rebalance_mean_s: f64,
    /// Whole-run hit-conservation ledger: every hit ever issued…
    #[serde(default)]
    pub hits_issued_total: u64,
    /// …was served…
    #[serde(default)]
    pub hits_served_total: u64,
    /// …or failed…
    #[serde(default)]
    pub hits_failed_total: u64,
    /// …or was still queued when the horizon hit.
    #[serde(default)]
    pub hits_in_flight: u64,
    /// The utilization time series, present when the run was configured
    /// with `record_timeline`.
    #[serde(default)]
    pub timeline: Option<Timeline>,
    /// Observability counters snapshot, present when
    /// [`SimConfig::obs`](crate::SimConfig) enables the counters
    /// registry. Skipped from serialization when absent so
    /// default-configured reports stay byte-identical to those produced
    /// before the observability layer existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub obs: Option<ObsSnapshot>,
    /// Client-perceived latency summary, present when the run was
    /// configured with an enabled geographic latency model. Skipped from
    /// serialization when absent so latency-free reports stay
    /// byte-identical to those produced before the proximity extension.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub latency: Option<LatencySummary>,
}

/// Exact-CDF summary of the client-perceived latency of every measured
/// page: the page response time (issue → last hit completed) **plus** the
/// base network round-trip between the client's domain and the server that
/// served it — the quantity geo-aware scheduling actually optimizes and
/// proximity-blind policies cannot see.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Pages in the sample (measured span only).
    pub pages: u64,
    /// Mean client-perceived latency, seconds.
    pub perceived_mean_s: f64,
    /// Median (exact empirical CDF, like the utilization quantiles).
    pub perceived_p50_s: f64,
    /// 95th percentile, seconds.
    pub perceived_p95_s: f64,
    /// 99th percentile, seconds.
    pub perceived_p99_s: f64,
    /// Mean base network RTT of the chosen (domain, server) pairs, seconds
    /// — how *near* the scheduler's answers were, independent of queueing.
    pub rtt_mean_s: f64,
}

impl SimReport {
    /// `P(MaxUtilization < x)` — the paper's cumulative frequency.
    #[must_use]
    pub fn prob_max_util_lt(&self, x: f64) -> f64 {
        if self.max_util_samples.is_empty() {
            return 0.0;
        }
        let below = self.max_util_samples.partition_point(|&s| s < x);
        below as f64 / self.max_util_samples.len() as f64
    }

    /// The CDF evaluated at each point of `xs` — one curve of Figure 1/2.
    #[must_use]
    pub fn cdf_curve(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.prob_max_util_lt(x))).collect()
    }

    /// The mean of the per-interval maximum utilization.
    #[must_use]
    pub fn mean_max_util(&self) -> f64 {
        if self.max_util_samples.is_empty() {
            return 0.0;
        }
        self.max_util_samples.iter().sum::<f64>() / self.max_util_samples.len() as f64
    }

    /// Mean utilization across all servers (should sit near the paper's
    /// 2/3 design point).
    #[must_use]
    pub fn mean_util(&self) -> f64 {
        if self.per_server_mean_util.is_empty() {
            return 0.0;
        }
        self.per_server_mean_util.iter().sum::<f64>() / self.per_server_mean_util.len() as f64
    }

    /// The paper's Figures 3–7 y-axis: `P(MaxUtilization < 0.98)`.
    #[must_use]
    pub fn p98(&self) -> f64 {
        self.prob_max_util_lt(0.98)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(samples: Vec<f64>) -> SimReport {
        let mut sorted = samples;
        sorted.sort_by(|a, b| a.total_cmp(b));
        SimReport {
            algorithm: "TEST".into(),
            seed: 0,
            heterogeneity_pct: 20.0,
            measured_span_s: 100.0,
            max_util_samples: sorted,
            per_server_mean_util: vec![0.6, 0.7],
            page_response_mean_s: 0.1,
            page_response_p95_s: 0.3,
            sessions: 10,
            dns_queries: 5,
            address_request_rate: 0.05,
            dns_control_fraction: 0.04,
            hits_completed: 1000,
            alarms: 0,
            ns_miss_fraction: 0.05,
            page_response_hot_mean_s: 0.12,
            page_response_normal_mean_s: 0.08,
            client_cache_hits: 0,
            hits_failed: 0,
            rebinds: 0,
            per_server_availability: vec![1.0, 1.0],
            time_to_rebalance_mean_s: 0.0,
            hits_issued_total: 1000,
            hits_served_total: 1000,
            hits_failed_total: 0,
            hits_in_flight: 0,
            timeline: None,
            obs: None,
            latency: None,
        }
    }

    #[test]
    fn cdf_is_fractional_rank() {
        let r = report(vec![0.5, 0.7, 0.9, 0.99]);
        assert_eq!(r.prob_max_util_lt(0.6), 0.25);
        assert_eq!(r.prob_max_util_lt(0.95), 0.75);
        assert_eq!(r.p98(), 0.75);
        assert_eq!(r.prob_max_util_lt(1.1), 1.0);
    }

    #[test]
    fn empty_samples_are_zero() {
        let r = report(vec![]);
        assert_eq!(r.prob_max_util_lt(0.5), 0.0);
        assert_eq!(r.mean_max_util(), 0.0);
    }

    #[test]
    fn means() {
        let r = report(vec![0.4, 0.6]);
        assert!((r.mean_max_util() - 0.5).abs() < 1e-12);
        assert!((r.mean_util() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone() {
        let r = report(vec![0.3, 0.5, 0.8, 0.9, 0.95]);
        let xs: Vec<f64> = (0..=20).map(|i| f64::from(i) / 20.0).collect();
        let curve = r.cdf_curve(&xs);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }
}
