//! Simulation configuration (paper Table 1 + Table 2).

use geodns_nameserver::MinTtlBehavior;
use geodns_server::{CapacityPlan, HeterogeneityLevel};
use geodns_simcore::QueueKind;
use geodns_workload::{LatencySpec, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::obs::ObsConfig;
use crate::{Algorithm, ClientCacheModel, EstimatorKind, FailureConfig, ServiceModel};

fn default_noncoop_fraction() -> f64 {
    1.0
}

fn default_shard_count() -> usize {
    1
}

fn default_epoch_s() -> f64 {
    8.0
}

fn default_parallel() -> bool {
    true
}

/// Domain-sharded execution of one run (extension; the scale experiments).
///
/// With `shards = 1` (the default) the run takes the classic single-world
/// path and is byte-identical to every report produced before this
/// extension existed. With `shards > 1` the world is decomposed by domain:
/// shard `s` owns every domain `d` with `d % shards == s`, together with
/// those domains' clients, its own name-server cache and DNS scheduler
/// state for them, and a private replica of the server farm scaled to its
/// client share. Shards run independent event loops and synchronize at
/// *epoch barriers* every [`epoch_s`](ShardSpec::epoch_s) simulated
/// seconds, exchanging (a) per-server backlog views, so each shard's
/// scheduler sees the whole site's queues, and (b) alarm/normal/liveness
/// signals, so state-based policies exclude overloaded servers everywhere.
///
/// The decomposition is a *model*: a sharded run is not sample-path
/// identical to the unsharded run of the same seed (cross-shard queueing
/// interleaves only at barriers). What **is** exact — and pinned by test —
/// is that the parallel execution is byte-identical to the sequential
/// execution of the same decomposition, so `parallel` is purely a speed
/// knob and the sequential path is the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Number of world shards; 1 = classic single-world execution.
    #[serde(default = "default_shard_count")]
    pub shards: usize,
    /// Simulated seconds between cross-shard exchange barriers (default:
    /// the utilization-check period, 8 s — backlog views then refresh at
    /// the same cadence as the alarm monitors).
    #[serde(default = "default_epoch_s")]
    pub epoch_s: f64,
    /// Run shards on OS threads (`true`, default) or on one thread
    /// (`false`). Reports are byte-identical either way; the sequential
    /// mode exists as the determinism oracle.
    #[serde(default = "default_parallel")]
    pub parallel: bool,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec { shards: 1, epoch_s: 8.0, parallel: true }
    }
}

/// How the server side is specified.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerSpec {
    /// One of the paper's Table 2 heterogeneity presets (N = 7).
    Level(HeterogeneityLevel),
    /// Explicit relative capacities (decreasing, starting at 1.0).
    Relative(Vec<f64>),
}

impl ServerSpec {
    /// Realizes the capacity plan for a given total site capacity.
    ///
    /// # Errors
    ///
    /// Returns a message if the relative capacities are invalid.
    pub fn plan(&self, total_capacity: f64) -> Result<CapacityPlan, String> {
        match self {
            ServerSpec::Level(level) => Ok(CapacityPlan::from_level(*level, total_capacity)),
            ServerSpec::Relative(rel) => CapacityPlan::from_relative(rel.clone(), total_capacity),
        }
    }
}

/// The full configuration of one simulation run. Defaults are the paper's
/// Table 1 values; every knob the evaluation sweeps is here.
///
/// # Examples
///
/// ```
/// use geodns_core::{Algorithm, SimConfig};
/// use geodns_server::HeterogeneityLevel;
///
/// let cfg = SimConfig::paper_default(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
/// assert_eq!(cfg.workload.n_clients, 500);
/// assert_eq!(cfg.ttl_const_s, 240.0);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The client workload (paper: 500 clients, K = 20 domains, pure Zipf).
    pub workload: WorkloadSpec,
    /// The server layout (paper: N = 7, Table 2 presets).
    pub servers: ServerSpec,
    /// Total site capacity in hits/s (paper: 500, held constant).
    pub total_capacity: f64,
    /// The scheduling algorithm under test.
    pub algorithm: Algorithm,
    /// How the DNS estimates hidden load weights.
    pub estimator: EstimatorKind,
    /// Name-server TTL acceptance (Figures 4–5 sweep the clamp).
    pub ns_behavior: MinTtlBehavior,
    /// Fraction of domains whose NS actually applies `ns_behavior`; the
    /// rest stay cooperative. The paper studies the worst case (1.0, the
    /// default); lower values model the realistic Internet mix
    /// (extension). Which domains are non-cooperative is drawn from the
    /// master seed.
    #[serde(default = "default_noncoop_fraction")]
    pub ns_noncoop_fraction: f64,
    /// Per-hit service-time shape (extension; the paper's model is
    /// exponential).
    #[serde(default)]
    pub service: ServiceModel,
    /// Client-side address caching (extension; browsers that pin resolved
    /// addresses defeat short TTLs).
    #[serde(default)]
    pub client_cache: ClientCacheModel,
    /// Capture the full utilization time series in the report (costs
    /// memory; off by default).
    #[serde(default)]
    pub record_timeline: bool,
    /// Server fault injection: seeded crash/recovery with client failover
    /// semantics (extension; off by default — the paper's servers never
    /// fail).
    #[serde(default)]
    pub failures: FailureConfig,
    /// Observability recorders: the counters registry and/or a JSONL
    /// decision trace (extension; both off by default — the disabled path
    /// is allocation-free and leaves reports byte-identical).
    #[serde(default)]
    pub obs: ObsConfig,
    /// Geographic latency model: a seeded per-domain×server base-RTT
    /// matrix giving proximity-aware policies a network-distance axis
    /// (extension; off by default — the dedicated RNG stream is never
    /// drawn and reports stay byte-identical).
    #[serde(default)]
    pub latency: LatencySpec,
    /// The constant-TTL baseline all schemes are rate-matched to (240 s).
    pub ttl_const_s: f64,
    /// The two-tier class threshold γ; `None` means the paper's `1/K`.
    pub class_threshold: Option<f64>,
    /// Whether adaptive TTLs are rate-normalized (paper: yes; ablation
    /// bench turns this off).
    pub normalize_ttl: bool,
    /// Seconds between utilization checks (paper: 8 s).
    pub util_interval_s: f64,
    /// Alarm threshold θ in `(0, 1]` (0.9 by default; OCR lost the digit).
    pub alarm_threshold: f64,
    /// Alarm hysteresis gap (paper: none).
    pub alarm_hysteresis: f64,
    /// Network delay for alarm/normal signals reaching the DNS, seconds.
    pub feedback_delay_s: f64,
    /// Measured span of the run after warm-up, seconds (paper: 5 h).
    pub duration_s: f64,
    /// Warm-up span discarded from statistics, seconds.
    pub warmup_s: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Which future-event-list implementation drives the run. Both kinds
    /// deliver events in the identical `(time, seq)` order, so reports are
    /// bit-identical either way (enforced by `tests/determinism.rs`); the
    /// calendar queue is simply faster. The heap is kept selectable as the
    /// differential-testing oracle.
    #[serde(default)]
    pub queue: QueueKind,
    /// Domain-sharded execution (extension; off — `shards = 1` — by
    /// default, which is byte-identical to the pre-sharding single world).
    #[serde(default)]
    pub shard: ShardSpec,
    /// Cap on samples retained by each exact response-time CDF; 0
    /// (default) retains everything. Below the cap quantiles are
    /// byte-identical to the uncapped CDF; beyond it samples go through a
    /// seeded reservoir so memory stays bounded — the scale experiments
    /// record one sample per page and would otherwise hold gigabytes.
    #[serde(default)]
    pub cdf_sample_cap: usize,
}

impl SimConfig {
    /// The paper's default configuration for a given algorithm and
    /// heterogeneity level.
    #[must_use]
    pub fn paper_default(algorithm: Algorithm, level: HeterogeneityLevel) -> Self {
        SimConfig {
            workload: WorkloadSpec::paper_default(),
            servers: ServerSpec::Level(level),
            total_capacity: 500.0,
            algorithm,
            estimator: EstimatorKind::Oracle,
            ns_behavior: MinTtlBehavior::Cooperative,
            ns_noncoop_fraction: 1.0,
            service: ServiceModel::Exponential,
            client_cache: ClientCacheModel::Off,
            record_timeline: false,
            failures: FailureConfig::default(),
            obs: ObsConfig::default(),
            latency: LatencySpec::default(),
            ttl_const_s: 240.0,
            class_threshold: None,
            normalize_ttl: true,
            util_interval_s: 8.0,
            alarm_threshold: 0.9,
            alarm_hysteresis: 0.0,
            feedback_delay_s: 0.1,
            duration_s: 5.0 * 3600.0,
            warmup_s: 1800.0,
            seed: 0x6E0D_0513,
            queue: QueueKind::default(),
            shard: ShardSpec::default(),
            cdf_sample_cap: 0,
        }
    }

    /// The paper's "ideal" envelope: PRR with constant TTL under a uniform
    /// client distribution.
    #[must_use]
    pub fn ideal(level: HeterogeneityLevel) -> Self {
        let mut cfg = Self::paper_default(Algorithm::prr_ttl1(), level);
        cfg.workload = WorkloadSpec::ideal();
        cfg
    }

    /// A shortened variant for tests and quick examples: same model, only
    /// `duration` and `warmup` shrink.
    #[must_use]
    pub fn quick(algorithm: Algorithm, level: HeterogeneityLevel) -> Self {
        let mut cfg = Self::paper_default(algorithm, level);
        cfg.duration_s = 1200.0;
        cfg.warmup_s = 300.0;
        cfg
    }

    /// The effective two-tier class threshold γ (`1/K` unless overridden).
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.class_threshold.unwrap_or(1.0 / self.workload.n_domains as f64)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first problem found as a human-readable message.
    pub fn validate(&self) -> Result<(), String> {
        self.workload.session.validate()?;
        self.workload.build().map(|_| ())?;
        self.servers.plan(self.total_capacity).map(|_| ())?;
        self.estimator.validate()?;
        if !(self.ttl_const_s.is_finite() && self.ttl_const_s > 0.0) {
            return Err(format!("ttl_const_s must be > 0, got {}", self.ttl_const_s));
        }
        if let Some(g) = self.class_threshold {
            if !(g > 0.0 && g < 1.0) {
                return Err(format!("class threshold must be in (0,1), got {g}"));
            }
        }
        if !(self.util_interval_s.is_finite() && self.util_interval_s > 0.0) {
            return Err(format!("util_interval_s must be > 0, got {}", self.util_interval_s));
        }
        if !(self.alarm_threshold > 0.0 && self.alarm_threshold <= 1.0) {
            return Err(format!("alarm threshold must be in (0,1], got {}", self.alarm_threshold));
        }
        if !(self.alarm_hysteresis >= 0.0 && self.alarm_hysteresis < self.alarm_threshold) {
            return Err("alarm hysteresis must be in [0, threshold)".to_string());
        }
        if self.feedback_delay_s < 0.0 {
            return Err("feedback delay must be >= 0".to_string());
        }
        if !(0.0..=1.0).contains(&self.ns_noncoop_fraction) {
            return Err(format!(
                "ns_noncoop_fraction must be in [0,1], got {}",
                self.ns_noncoop_fraction
            ));
        }
        self.service.validate()?;
        self.client_cache.validate()?;
        self.failures.validate()?;
        self.obs.validate()?;
        self.latency.validate()?;
        if self.duration_s <= 0.0 || self.duration_s.is_nan() {
            return Err("duration must be > 0".to_string());
        }
        if self.warmup_s < 0.0 {
            return Err("warmup must be >= 0".to_string());
        }
        self.validate_sharding()?;
        Ok(())
    }

    /// The sharded-execution restrictions: the decomposition exchanges
    /// only backlog views and signals at barriers, so features that carry
    /// other cross-shard state (fault injection, timelines, tracers, the
    /// seeded geography) are rejected rather than silently mis-modeled.
    fn validate_sharding(&self) -> Result<(), String> {
        let s = &self.shard;
        if s.shards == 0 {
            return Err("shard.shards must be >= 1".to_string());
        }
        if s.shards == 1 {
            return Ok(());
        }
        if !(s.epoch_s.is_finite() && s.epoch_s > 0.0) {
            return Err(format!("shard.epoch_s must be > 0, got {}", s.epoch_s));
        }
        if s.shards > self.workload.n_domains {
            return Err(format!(
                "shard.shards = {} exceeds the {} domains (shards own whole domains)",
                s.shards, self.workload.n_domains
            ));
        }
        if self.failures.enabled {
            return Err("sharded runs do not support fault injection".to_string());
        }
        if self.record_timeline {
            return Err("sharded runs do not support timeline recording".to_string());
        }
        if self.obs.counters || self.obs.trace_path.is_some() {
            return Err("sharded runs do not support observability recorders".to_string());
        }
        if self.latency.enabled {
            return Err("sharded runs do not support the geographic latency model".to_string());
        }
        if self.workload.profile != geodns_workload::RateProfile::Constant {
            return Err("sharded runs require the constant rate profile".to_string());
        }
        if self.workload.rate_error != 0.0 {
            return Err("sharded runs do not support rate perturbation".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_papers() {
        let cfg = SimConfig::paper_default(Algorithm::rr(), HeterogeneityLevel::H20);
        assert_eq!(cfg.workload.n_domains, 20);
        assert_eq!(cfg.total_capacity, 500.0);
        assert_eq!(cfg.util_interval_s, 8.0);
        assert_eq!(cfg.duration_s, 18000.0);
        assert!((cfg.gamma() - 0.05).abs() < 1e-12, "γ = 1/K = 1/20");
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn ideal_uses_uniform_workload() {
        let cfg = SimConfig::ideal(HeterogeneityLevel::H35);
        let w = cfg.workload.build().unwrap();
        let rates = w.nominal_rates();
        assert!((rates[0] - rates[19]).abs() < 1e-9);
        assert_eq!(cfg.algorithm, Algorithm::prr_ttl1());
    }

    #[test]
    fn gamma_override() {
        let mut cfg = SimConfig::paper_default(Algorithm::rr2(), HeterogeneityLevel::H0);
        cfg.class_threshold = Some(0.1);
        assert_eq!(cfg.gamma(), 0.1);
        cfg.class_threshold = Some(1.5);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_problems() {
        let base = SimConfig::paper_default(Algorithm::rr(), HeterogeneityLevel::H0);

        let mut cfg = base.clone();
        cfg.ttl_const_s = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = base.clone();
        cfg.alarm_threshold = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = base.clone();
        cfg.duration_s = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = base.clone();
        cfg.servers = ServerSpec::Relative(vec![0.5, 1.0]);
        assert!(cfg.validate().is_err());

        let mut cfg = base.clone();
        cfg.latency.regions = 0;
        assert!(cfg.validate().is_err(), "garbage latency block rejected even when disabled");

        let mut cfg = base;
        cfg.workload.n_clients = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn quick_is_just_shorter() {
        let q = SimConfig::quick(Algorithm::rr(), HeterogeneityLevel::H20);
        let p = SimConfig::paper_default(Algorithm::rr(), HeterogeneityLevel::H20);
        assert!(q.duration_s < p.duration_s);
        assert_eq!(q.workload, p.workload);
    }

    #[test]
    fn shard_spec_is_validated() {
        let base = SimConfig::paper_default(Algorithm::rr(), HeterogeneityLevel::H20);

        let mut cfg = base.clone();
        cfg.shard.shards = 4;
        assert!(cfg.validate().is_ok());

        cfg.shard.shards = 0;
        assert!(cfg.validate().is_err(), "zero shards");

        cfg.shard.shards = 21;
        assert!(cfg.validate().is_err(), "more shards than domains");

        cfg.shard.shards = 4;
        cfg.shard.epoch_s = 0.0;
        assert!(cfg.validate().is_err(), "degenerate epoch");

        let mut cfg = base.clone();
        cfg.shard.shards = 4;
        cfg.record_timeline = true;
        assert!(cfg.validate().is_err(), "timeline excluded");

        let mut cfg = base.clone();
        cfg.shard.shards = 4;
        cfg.failures.enabled = true;
        assert!(cfg.validate().is_err(), "fault injection excluded");

        let mut cfg = base.clone();
        cfg.shard.shards = 4;
        cfg.latency.enabled = true;
        assert!(cfg.validate().is_err(), "geography excluded");

        let mut cfg = base;
        cfg.shard.shards = 4;
        cfg.workload.rate_error = 0.2;
        assert!(cfg.validate().is_err(), "perturbation excluded");
    }

    #[test]
    fn pre_sharding_configs_deserialize_to_single_shard() {
        let cfg = SimConfig::paper_default(Algorithm::rr(), HeterogeneityLevel::H20);
        let mut json: serde_json::Value = serde_json::to_value(&cfg).unwrap();
        match &mut json {
            serde_json::Value::Object(fields) => {
                fields.retain(|(k, _)| k != "shard" && k != "cdf_sample_cap");
            }
            other => panic!("config serializes to an object, got {other:?}"),
        }
        let back: SimConfig = serde_json::from_value(&json).unwrap();
        assert_eq!(back.shard, ShardSpec::default());
        assert_eq!(back.shard.shards, 1);
        assert_eq!(back.cdf_sample_cap, 0);
        assert_eq!(back, cfg);
    }

    #[test]
    fn explicit_relative_servers() {
        let mut cfg = SimConfig::paper_default(Algorithm::rr(), HeterogeneityLevel::H0);
        cfg.servers = ServerSpec::Relative(vec![1.0, 0.9, 0.3]);
        assert!(cfg.validate().is_ok());
        let plan = cfg.servers.plan(cfg.total_capacity).unwrap();
        assert_eq!(plan.num_servers(), 3);
    }
}
