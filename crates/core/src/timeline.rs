//! Optional time-series capture of server utilizations.

use serde::{Deserialize, Serialize};

/// The utilization time series of one run: one row per utilization-check
/// instant (the paper's 8-second windows), recorded only when
/// [`SimConfig::record_timeline`](crate::SimConfig::record_timeline) is
/// set. Useful for plotting what a figure's CDF summarizes away — *when*
/// the overload episodes happen, which server suffers, how a flash crowd
/// propagates.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// Sample instants, seconds since warm-up end.
    pub times_s: Vec<f64>,
    /// Per-sample utilization of every server (`samples × servers`).
    pub per_server: Vec<Vec<f64>>,
    /// Liveness transitions under fault injection: `(t_s, server, up)`
    /// with `t_s` seconds since warm-up end and `up = false` for a crash,
    /// `true` for the repair completing. Empty without fault injection.
    #[serde(default)]
    pub failure_events: Vec<(f64, u32, bool)>,
    /// Mean client-perceived latency of the pages completed in each
    /// sample window, seconds (0 for a window with no completions).
    /// Populated only when the geographic latency model is enabled;
    /// skipped from serialization otherwise so latency-free timelines
    /// stay byte-identical to pre-extension ones.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub perceived_latency_s: Vec<f64>,
}

impl Timeline {
    /// Creates an empty timeline.
    #[must_use]
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Appends one sample row.
    ///
    /// # Panics
    ///
    /// Panics if the row width changes between samples.
    pub fn push(&mut self, t_s: f64, utils: Vec<f64>) {
        if let Some(first) = self.per_server.first() {
            assert_eq!(first.len(), utils.len(), "server count changed mid-run");
        }
        self.times_s.push(t_s);
        self.per_server.push(utils);
    }

    /// Records one liveness transition (crash or repair).
    pub fn push_failure_event(&mut self, t_s: f64, server: u32, up: bool) {
        self.failure_events.push((t_s, server, up));
    }

    /// Appends one window's mean client-perceived latency (latency model
    /// enabled only).
    pub fn push_perceived(&mut self, mean_s: f64) {
        self.perceived_latency_s.push(mean_s);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times_s.len()
    }

    /// Whether no samples were captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times_s.is_empty()
    }

    /// The per-sample maximum across servers.
    #[must_use]
    pub fn max_series(&self) -> Vec<f64> {
        self.per_server.iter().map(|row| row.iter().cloned().fold(0.0, f64::max)).collect()
    }

    /// Renders the liveness transitions as CSV (`t_s,server,up`), with
    /// `server` 1-based to match [`to_csv`](Self::to_csv)'s column names
    /// and `up` as `0`/`1`. Header-only without fault injection.
    #[must_use]
    pub fn failure_events_to_csv(&self) -> String {
        let mut out = String::from("t_s,server,up\n");
        for &(t, server, up) in &self.failure_events {
            out.push_str(&format!("{t:.3},{},{}\n", server + 1, u8::from(up)));
        }
        out
    }

    /// Renders the timeline as CSV (`t,s1,s2,…`), ready for any plotting
    /// tool.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let servers = self.per_server.first().map_or(0, Vec::len);
        let mut out = String::from("t_s");
        for s in 0..servers {
            out.push_str(&format!(",server{}", s + 1));
        }
        out.push('\n');
        for (t, row) in self.times_s.iter().zip(&self.per_server) {
            out.push_str(&format!("{t:.3}"));
            for u in row {
                out.push_str(&format!(",{u:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut t = Timeline::new();
        assert!(t.is_empty());
        t.push(8.0, vec![0.5, 0.9]);
        t.push(16.0, vec![0.7, 0.6]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.max_series(), vec![0.9, 0.7]);
    }

    #[test]
    fn csv_shape() {
        let mut t = Timeline::new();
        t.push(8.0, vec![0.25, 0.5]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_s,server1,server2");
        assert_eq!(lines[1], "8.000,0.2500,0.5000");
    }

    #[test]
    #[should_panic(expected = "server count changed")]
    fn width_change_panics() {
        let mut t = Timeline::new();
        t.push(8.0, vec![0.5]);
        t.push(16.0, vec![0.5, 0.5]);
    }

    #[test]
    fn empty_csv_is_header_only() {
        let t = Timeline::new();
        assert_eq!(t.to_csv(), "t_s\n");
    }

    #[test]
    fn failure_events_accumulate() {
        let mut t = Timeline::new();
        assert!(t.failure_events.is_empty());
        t.push_failure_event(12.5, 3, false);
        t.push_failure_event(40.0, 3, true);
        assert_eq!(t.failure_events, vec![(12.5, 3, false), (40.0, 3, true)]);
    }

    #[test]
    fn perceived_latency_serializes_only_when_present() {
        let mut t = Timeline::new();
        t.push(8.0, vec![0.5]);
        let json = serde_json::to_string(&t).unwrap();
        assert!(
            !json.contains("perceived_latency_s"),
            "latency-free timeline must not grow a key: {json}"
        );
        t.push_perceived(0.125);
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("\"perceived_latency_s\":[0.125]"));
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn failure_events_csv_shape() {
        let mut t = Timeline::new();
        assert_eq!(t.failure_events_to_csv(), "t_s,server,up\n");
        t.push_failure_event(0.0, 2, false);
        t.push_failure_event(37.25, 2, true);
        let csv = t.failure_events_to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["t_s,server,up", "0.000,3,0", "37.250,3,1"]);
    }
}
