//! Probabilistic round-robin (PRR, PRR2) — §3.1 of the paper.

use geodns_simcore::StreamRng;
use rand::Rng;

use super::{SchedCtx, SelectionPolicy};

/// Walks in round-robin order from `start + 1`, accepting server `S_i` with
/// probability `α_i` ("we generate a random number and, under the
/// assumption that `S_{i-1}` was the last chosen server, we assign the new
/// request to `S_i` only if `u ≤ α_i`; otherwise we skip `S_i` and consider
/// `S_{i+1}`"). Alarmed servers are skipped outright. Bounded by a safety
/// cap, after which the next eligible server with positive capacity is
/// taken unconditionally (falling back to plain eligibility when every
/// capacity is zero).
pub(crate) fn probabilistic_walk(start: usize, ctx: &SchedCtx<'_>, rng: &mut StreamRng) -> usize {
    let n = ctx.num_servers();
    let cap = 64 * n;
    let mut idx = start;
    for _ in 0..cap {
        idx = (idx + 1) % n;
        if !ctx.eligible(idx) {
            continue;
        }
        if rng.gen::<f64>() <= ctx.relative_caps[idx] {
            return idx;
        }
    }
    // Cap exhausted — only reachable when acceptance draws keep failing,
    // i.e. α ≈ 0 on every eligible server. The cap is a multiple of `n`,
    // so `idx == start` here and the fallback is deterministic: take the
    // first eligible server after the pointer, preferring one with
    // positive capacity. (The old handoff to `rr::next_eligible` ignored
    // α entirely, so an exactly-zero-capacity server could absorb every
    // fallback while a positive-capacity server sat one slot further on.)
    let mut first_eligible = None;
    for off in 1..=n {
        let s = (idx + off) % n;
        if !ctx.eligible(s) {
            continue;
        }
        if ctx.relative_caps[s] > 0.0 {
            return s;
        }
        if first_eligible.is_none() {
            first_eligible = Some(s);
        }
    }
    first_eligible.unwrap_or((idx + 1) % n)
}

/// PRR: round-robin with capacity-proportional acceptance, the paper's
/// straightforward extension of RR to heterogeneous servers. In the long
/// run server `S_i` receives a share of requests proportional to `α_i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbabilisticRr {
    last: usize,
}

impl ProbabilisticRr {
    /// Creates a PRR pointer over `n_servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n_servers == 0`.
    #[must_use]
    pub fn new(n_servers: usize) -> Self {
        assert!(n_servers > 0, "need at least one server");
        ProbabilisticRr { last: n_servers - 1 }
    }
}

impl SelectionPolicy for ProbabilisticRr {
    fn name(&self) -> &'static str {
        "PRR"
    }

    fn select(&mut self, ctx: &SchedCtx<'_>, rng: &mut StreamRng) -> usize {
        let s = probabilistic_walk(self.last, ctx, rng);
        self.last = s;
        s
    }

    fn state_snapshot(&self, _now: geodns_simcore::SimTime, out: &mut Vec<f64>) {
        out.push(self.last as f64);
    }
}

/// PRR2: the two-tier variant — an independent probabilistic round-robin
/// pointer per domain class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbabilisticRr2 {
    n_servers: usize,
    last: Vec<usize>,
    desyncs: u64,
}

impl ProbabilisticRr2 {
    /// Creates per-class pointers.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    #[must_use]
    pub fn new(n_servers: usize, n_classes: usize) -> Self {
        assert!(n_servers > 0, "need at least one server");
        assert!(n_classes > 0, "need at least one class");
        ProbabilisticRr2 {
            n_servers,
            last: (0..n_classes).map(|c| (n_servers - 1 + c) % n_servers).collect(),
            desyncs: 0,
        }
    }

    /// Grows the pointer table when a class index beyond the current
    /// classification arrives (classifier/policy desync after a rebuild).
    /// The old behaviour clamped onto the last pointer, silently sharing
    /// round-robin state between distinct classes; now the table is
    /// repaired with the same staggered-start formula as
    /// `on_classes_rebuilt` and the incident is counted.
    fn ensure_class(&mut self, class: usize) -> usize {
        if class >= self.last.len() {
            self.desyncs += 1;
            let n = self.n_servers;
            let have = self.last.len();
            self.last.extend((have..=class).map(|c| (n - 1 + c) % n));
        }
        class
    }
}

impl SelectionPolicy for ProbabilisticRr2 {
    fn name(&self) -> &'static str {
        "PRR2"
    }

    fn select(&mut self, ctx: &SchedCtx<'_>, rng: &mut StreamRng) -> usize {
        let class = self.ensure_class(ctx.class);
        let s = probabilistic_walk(self.last[class], ctx, rng);
        self.last[class] = s;
        s
    }

    fn on_classes_rebuilt(&mut self, n_classes: usize) {
        if n_classes != self.last.len() && n_classes > 0 {
            self.last = (0..n_classes).map(|c| (self.n_servers - 1 + c) % self.n_servers).collect();
        }
    }

    fn class_desyncs(&self) -> u64 {
        self.desyncs
    }

    fn state_snapshot(&self, _now: geodns_simcore::SimTime, out: &mut Vec<f64>) {
        out.extend(self.last.iter().map(|&p| p as f64));
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::CtxFixture;
    use super::*;
    use geodns_simcore::RngStreams;

    #[test]
    fn shares_track_relative_capacity() {
        let f = CtxFixture::new(); // α = [1, 1, .8, .8, .5, .5, .5]
        let mut prr = ProbabilisticRr::new(7);
        let mut rng = RngStreams::new(42).stream("prr");
        let n = 140_000;
        let mut counts = [0usize; 7];
        for _ in 0..n {
            counts[prr.select(&f.ctx(0, 0), &mut rng)] += 1;
        }
        let alpha_sum: f64 = f.relative.iter().sum();
        for (s, &count) in counts.iter().enumerate() {
            let share = count as f64 / n as f64;
            let expect = f.relative[s] / alpha_sum;
            assert!(
                (share - expect).abs() < 0.01,
                "server {s}: share {share:.4} vs α-proportional {expect:.4}"
            );
        }
    }

    #[test]
    fn homogeneous_prr_degenerates_to_rr() {
        let mut f = CtxFixture::new();
        f.relative = vec![1.0; 7];
        let mut prr = ProbabilisticRr::new(7);
        let mut rng = RngStreams::new(1).stream("prr");
        let picks: Vec<usize> = (0..7).map(|_| prr.select(&f.ctx(0, 0), &mut rng)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn alarmed_servers_never_chosen() {
        let mut f = CtxFixture::new();
        f.available[0] = false;
        f.available[4] = false;
        let mut prr = ProbabilisticRr::new(7);
        let mut rng = RngStreams::new(7).stream("prr");
        for _ in 0..10_000 {
            let s = prr.select(&f.ctx(0, 0), &mut rng);
            assert!(s != 0 && s != 4);
        }
    }

    #[test]
    fn prr2_classes_have_independent_state() {
        let f = CtxFixture::new();
        let mut p = ProbabilisticRr2::new(7, 2);
        let mut rng = RngStreams::new(9).stream("prr2");
        // Just exercise both classes and confirm valid output.
        for i in 0..1000 {
            let s = p.select(&f.ctx(i % 4, i % 2), &mut rng);
            assert!(s < 7);
        }
    }

    #[test]
    fn prr2_rebuild_is_safe() {
        let f = CtxFixture::new();
        let mut p = ProbabilisticRr2::new(7, 2);
        p.on_classes_rebuilt(3);
        let mut rng = RngStreams::new(9).stream("prr2");
        assert!(p.select(&f.ctx(0, 2), &mut rng) < 7);
        assert_eq!(p.class_desyncs(), 0, "in-range class after rebuild is not a desync");
    }

    /// Regression: an out-of-range class used to be clamped onto the last
    /// pointer, silently sharing state between distinct classes. It must
    /// instead grow the table with the staggered-start formula and count
    /// the desync.
    #[test]
    fn prr2_out_of_range_class_grows_table_and_counts_desync() {
        let mut f = CtxFixture::new();
        f.relative = vec![1.0; 7]; // deterministic walk: always accept
        let mut p = ProbabilisticRr2::new(7, 2);
        let mut rng = RngStreams::new(11).stream("prr2");
        // Class 4 starts from the staggered pointer (7 - 1 + 4) % 7 = 3,
        // not from class 1's pointer.
        assert_eq!(p.select(&f.ctx(0, 4), &mut rng), 4);
        assert_eq!(p.class_desyncs(), 1);
        // Class 1's own pointer was untouched by the desync repair.
        assert_eq!(p.select(&f.ctx(0, 1), &mut rng), 1);
        // The repaired class now has independent state: no further desync.
        assert_eq!(p.select(&f.ctx(0, 4), &mut rng), 5);
        assert_eq!(p.class_desyncs(), 1);
    }

    /// Regression for the post-cap fallback: with one server at exactly
    /// α = 0 and the rest near zero, the old `next_eligible` handoff could
    /// hand the request to the zero-capacity server; the fallback must
    /// prefer an eligible server with positive capacity.
    #[test]
    fn cap_exhausted_fallback_skips_zero_capacity_servers() {
        let mut f = CtxFixture::new();
        f.relative = vec![0.0; 7];
        f.relative[6] = 1e-300; // positive but never accepted in 64·n draws
        let mut rng = RngStreams::new(13).stream("walk");
        for start in 0..7 {
            let s = probabilistic_walk(start, &f.ctx(0, 0), &mut rng);
            assert_eq!(s, 6, "fallback from {start} must prefer the positive-α server");
        }
        // With the positive-α server alarmed, the fallback degrades to the
        // first eligible server after the pointer.
        f.available[6] = false;
        assert_eq!(probabilistic_walk(3, &f.ctx(0, 0), &mut rng), 4);
    }

    /// With *every* server alarmed the eligibility mask falls back to
    /// all-eligible; the cap-exhausted walk must still answer in range.
    #[test]
    fn cap_exhausted_fallback_answers_when_all_alarmed() {
        let mut f = CtxFixture::new();
        f.relative = vec![0.0; 7];
        f.available = vec![false; 7];
        let mut rng = RngStreams::new(17).stream("walk");
        let s = probabilistic_walk(2, &f.ctx(0, 0), &mut rng);
        assert_eq!(s, 3, "all-alarmed, all-zero-α: first server after the pointer");
    }

    #[test]
    fn names() {
        assert_eq!(ProbabilisticRr::new(1).name(), "PRR");
        assert_eq!(ProbabilisticRr2::new(1, 1).name(), "PRR2");
    }
}
