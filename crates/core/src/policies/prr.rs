//! Probabilistic round-robin (PRR, PRR2) — §3.1 of the paper.

use geodns_simcore::StreamRng;
use rand::Rng;

use super::{SchedCtx, SelectionPolicy};

/// Walks in round-robin order from `start + 1`, accepting server `S_i` with
/// probability `α_i` ("we generate a random number and, under the
/// assumption that `S_{i-1}` was the last chosen server, we assign the new
/// request to `S_i` only if `u ≤ α_i`; otherwise we skip `S_i` and consider
/// `S_{i+1}`"). Alarmed servers are skipped outright. Bounded by a safety
/// cap, after which the next eligible server is taken unconditionally.
pub(crate) fn probabilistic_walk(start: usize, ctx: &SchedCtx<'_>, rng: &mut StreamRng) -> usize {
    let n = ctx.num_servers();
    let cap = 64 * n;
    let mut idx = start;
    for _ in 0..cap {
        idx = (idx + 1) % n;
        if !ctx.eligible(idx) {
            continue;
        }
        if rng.gen::<f64>() <= ctx.relative_caps[idx] {
            return idx;
        }
    }
    super::rr::next_eligible(idx, ctx)
}

/// PRR: round-robin with capacity-proportional acceptance, the paper's
/// straightforward extension of RR to heterogeneous servers. In the long
/// run server `S_i` receives a share of requests proportional to `α_i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbabilisticRr {
    last: usize,
}

impl ProbabilisticRr {
    /// Creates a PRR pointer over `n_servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n_servers == 0`.
    #[must_use]
    pub fn new(n_servers: usize) -> Self {
        assert!(n_servers > 0, "need at least one server");
        ProbabilisticRr { last: n_servers - 1 }
    }
}

impl SelectionPolicy for ProbabilisticRr {
    fn name(&self) -> &'static str {
        "PRR"
    }

    fn select(&mut self, ctx: &SchedCtx<'_>, rng: &mut StreamRng) -> usize {
        let s = probabilistic_walk(self.last, ctx, rng);
        self.last = s;
        s
    }

    fn state_snapshot(&self, _now: geodns_simcore::SimTime, out: &mut Vec<f64>) {
        out.push(self.last as f64);
    }
}

/// PRR2: the two-tier variant — an independent probabilistic round-robin
/// pointer per domain class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbabilisticRr2 {
    n_servers: usize,
    last: Vec<usize>,
}

impl ProbabilisticRr2 {
    /// Creates per-class pointers.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    #[must_use]
    pub fn new(n_servers: usize, n_classes: usize) -> Self {
        assert!(n_servers > 0, "need at least one server");
        assert!(n_classes > 0, "need at least one class");
        ProbabilisticRr2 {
            n_servers,
            last: (0..n_classes).map(|c| (n_servers - 1 + c) % n_servers).collect(),
        }
    }
}

impl SelectionPolicy for ProbabilisticRr2 {
    fn name(&self) -> &'static str {
        "PRR2"
    }

    fn select(&mut self, ctx: &SchedCtx<'_>, rng: &mut StreamRng) -> usize {
        let class = ctx.class.min(self.last.len() - 1);
        let s = probabilistic_walk(self.last[class], ctx, rng);
        self.last[class] = s;
        s
    }

    fn on_classes_rebuilt(&mut self, n_classes: usize) {
        if n_classes != self.last.len() && n_classes > 0 {
            self.last = (0..n_classes).map(|c| (self.n_servers - 1 + c) % self.n_servers).collect();
        }
    }

    fn state_snapshot(&self, _now: geodns_simcore::SimTime, out: &mut Vec<f64>) {
        out.extend(self.last.iter().map(|&p| p as f64));
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::CtxFixture;
    use super::*;
    use geodns_simcore::RngStreams;

    #[test]
    fn shares_track_relative_capacity() {
        let f = CtxFixture::new(); // α = [1, 1, .8, .8, .5, .5, .5]
        let mut prr = ProbabilisticRr::new(7);
        let mut rng = RngStreams::new(42).stream("prr");
        let n = 140_000;
        let mut counts = [0usize; 7];
        for _ in 0..n {
            counts[prr.select(&f.ctx(0, 0), &mut rng)] += 1;
        }
        let alpha_sum: f64 = f.relative.iter().sum();
        for (s, &count) in counts.iter().enumerate() {
            let share = count as f64 / n as f64;
            let expect = f.relative[s] / alpha_sum;
            assert!(
                (share - expect).abs() < 0.01,
                "server {s}: share {share:.4} vs α-proportional {expect:.4}"
            );
        }
    }

    #[test]
    fn homogeneous_prr_degenerates_to_rr() {
        let mut f = CtxFixture::new();
        f.relative = vec![1.0; 7];
        let mut prr = ProbabilisticRr::new(7);
        let mut rng = RngStreams::new(1).stream("prr");
        let picks: Vec<usize> = (0..7).map(|_| prr.select(&f.ctx(0, 0), &mut rng)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn alarmed_servers_never_chosen() {
        let mut f = CtxFixture::new();
        f.available[0] = false;
        f.available[4] = false;
        let mut prr = ProbabilisticRr::new(7);
        let mut rng = RngStreams::new(7).stream("prr");
        for _ in 0..10_000 {
            let s = prr.select(&f.ctx(0, 0), &mut rng);
            assert!(s != 0 && s != 4);
        }
    }

    #[test]
    fn prr2_classes_have_independent_state() {
        let f = CtxFixture::new();
        let mut p = ProbabilisticRr2::new(7, 2);
        let mut rng = RngStreams::new(9).stream("prr2");
        // Just exercise both classes and confirm valid output.
        for i in 0..1000 {
            let s = p.select(&f.ctx(i % 4, i % 2), &mut rng);
            assert!(s < 7);
        }
    }

    #[test]
    fn prr2_rebuild_is_safe() {
        let f = CtxFixture::new();
        let mut p = ProbabilisticRr2::new(7, 2);
        p.on_classes_rebuilt(3);
        let mut rng = RngStreams::new(9).stream("prr2");
        assert!(p.select(&f.ctx(0, 2), &mut rng) < 7);
    }

    #[test]
    fn names() {
        assert_eq!(ProbabilisticRr::new(1).name(), "PRR");
        assert_eq!(ProbabilisticRr2::new(1, 1).name(), "PRR2");
    }
}
