//! Proximity-aware RTT-band selection (ROADMAP item 2).
//!
//! The policy keeps a per-(domain × server) Jacobson/Karels estimator
//! (RFC 6298: `SRTT ← (1−α)·SRTT + α·R` with `α = 1/8`,
//! `RTTVAR ← (1−β)·RTTVAR + β·|SRTT−R|` with `β = 1/4`,
//! `RTO = SRTT + 4·RTTVAR`) fed by completed-page and timeout events, and
//! selects the way Unbound's recursive resolver picks upstream servers,
//! crossed with DAL's hidden-load accounting:
//!
//! * every eligible server whose score lies within `best + band` of the
//!   best score **competes** — within the band, the winner is the server
//!   with the lowest cost
//!   `(ε + A_i) · (1 + backlog_i)² / α_i · max(score_i, 25 ms)`, where
//!   `A_i` is the DAL-style accumulated hidden load every DNS assignment
//!   charges immediately (the `assigned` hook) and `ε` a small cold-start
//!   stand-in. Charging at decision time — not when backlog eventually
//!   surfaces — is what stops a whole region's domains from herding onto
//!   one nearby server for a full TTL window; the RTT factor means a near
//!   server must accumulate proportionally more load before a far one
//!   looks cheaper; the squared backlog lets a congested near server shed
//!   toward farther band-mates before the alarm threshold; and the 25 ms
//!   cost floor keeps same-region jitter from mattering;
//! * the table is keyed by the **source domain**, not the hot/normal
//!   selection class — geography does not follow the load split, and
//!   averaging regions together would erase the proximity signal;
//! * a server with no measurements yet scores an optimistic fixed
//!   *niceness* (376 ms, Unbound's `UNKNOWN_SERVER_NICENESS`), placing it
//!   inside the band of any reasonably close best — unknown servers get
//!   explored instead of starved;
//! * a timeout doubles the penalized SRTT (multiplicative back-off,
//!   clamped to [50 ms, 120 s]) and, at three consecutive timeouts, adds a
//!   10 s penalty that pushes the server far outside any plausible band —
//!   composing with the failure model, where timeouts *are* the liveness
//!   signal.
//!
//! Alarm masks still dominate: an alarmed server is never considered
//! while any unalarmed one exists, exactly like every other policy.

use geodns_simcore::{SimTime, StreamRng};

use super::{SchedCtx, SelectionPolicy};

/// Smoothing gain for the SRTT mean (RFC 6298 `alpha`).
const SRTT_ALPHA: f64 = 1.0 / 8.0;
/// Smoothing gain for the RTT deviation (RFC 6298 `beta`).
const RTTVAR_BETA: f64 = 1.0 / 4.0;
/// Deviation multiplier in the RTO (RFC 6298 `K`).
const RTO_K: f64 = 4.0;
/// Floor for the penalized/backed-off RTT, milliseconds.
pub const RTT_MIN_TIMEOUT_MS: f64 = 50.0;
/// Floor for the RTT factor in the selection cost, milliseconds — just
/// above the same-region jitter ceiling, so servers in the requester's
/// region compete on capacity and load alone while cross-region distances
/// keep their full contrast.
pub const RTT_COST_FLOOR_MS: f64 = 25.0;
/// Cold-start load in the selection cost: stands in for the accumulated
/// hidden load before a server received its first assignment. Small on
/// purpose — DNS decisions are rare (one per domain per TTL window), so
/// the hidden-load weights they charge are fractions of a unit; a floor
/// of 1.0 would flatten their ratios and reduce the cost to
/// nearest-server herding. Before any load lands, ties break toward
/// proximity (`ε·rtt` ordering).
const COLD_START_LOAD: f64 = 0.01;
/// Ceiling for the penalized/backed-off RTT, milliseconds.
pub const RTT_MAX_TIMEOUT_MS: f64 = 120_000.0;
/// Optimistic score of a server with no measurements, milliseconds —
/// low enough to be explored, high enough not to dominate a measured
/// nearby server.
pub const UNKNOWN_SERVER_NICENESS_MS: f64 = 376.0;
/// Default selection band width, milliseconds: servers within this much
/// of the best score compete on capacity and load.
pub const DEFAULT_BAND_MS: u32 = 400;
/// Additive score penalty once a server hits the timeout ceiling,
/// milliseconds.
const TIMEOUT_PENALTY_MS: f64 = 10_000.0;
/// Consecutive timeouts after which the additive penalty applies.
const MAX_TIMEOUT_COUNT: u32 = 3;

/// One (domain, server) RTT estimate: the Jacobson/Karels pair plus the
/// consecutive-timeout counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttInfo {
    srtt_ms: f64,
    rttvar_ms: f64,
    rto_ms: f64,
    timeout_count: u32,
    /// Whether any evidence (sample or timeout) has arrived yet.
    known: bool,
}

impl Default for RttInfo {
    fn default() -> Self {
        RttInfo::new()
    }
}

impl RttInfo {
    /// A fresh, never-measured estimate: RTTVAR seeded so the initial RTO
    /// equals the unknown-server niceness.
    #[must_use]
    pub fn new() -> Self {
        let rttvar_ms = UNKNOWN_SERVER_NICENESS_MS / RTO_K;
        RttInfo {
            srtt_ms: 0.0,
            rttvar_ms,
            rto_ms: calc_rto(0.0, rttvar_ms),
            timeout_count: 0,
            known: false,
        }
    }

    /// Folds one round-trip sample in. Non-finite or negative samples are
    /// discarded (the estimator's non-finite discipline). A sample clears
    /// the consecutive-timeout counter.
    pub fn observe(&mut self, rtt_ms: f64) {
        if !rtt_ms.is_finite() || rtt_ms < 0.0 {
            return;
        }
        if self.known {
            self.rttvar_ms += RTTVAR_BETA * ((self.srtt_ms - rtt_ms).abs() - self.rttvar_ms);
            self.srtt_ms += SRTT_ALPHA * (rtt_ms - self.srtt_ms);
        } else {
            // First sample (RFC 6298 §2.2): SRTT = R, RTTVAR = R/2.
            self.srtt_ms = rtt_ms;
            self.rttvar_ms = rtt_ms / 2.0;
            self.known = true;
        }
        self.timeout_count = 0;
        self.rto_ms = calc_rto(self.srtt_ms, self.rttvar_ms);
    }

    /// Folds one timeout in: multiplicative SRTT back-off clamped to
    /// [[`RTT_MIN_TIMEOUT_MS`], [`RTT_MAX_TIMEOUT_MS`]] and a bump of the
    /// consecutive-timeout counter.
    pub fn observe_timeout(&mut self) {
        self.timeout_count = (self.timeout_count + 1).min(MAX_TIMEOUT_COUNT);
        self.srtt_ms = (self.srtt_ms.max(RTT_MIN_TIMEOUT_MS) * 2.0).min(RTT_MAX_TIMEOUT_MS);
        self.known = true;
        self.rto_ms = calc_rto(self.srtt_ms, self.rttvar_ms);
    }

    /// The selection score, milliseconds: the unknown-server niceness
    /// before any evidence, otherwise the (penalized) SRTT.
    #[must_use]
    pub fn score_ms(&self) -> f64 {
        if !self.known {
            return UNKNOWN_SERVER_NICENESS_MS;
        }
        let penalty =
            if self.timeout_count >= MAX_TIMEOUT_COUNT { TIMEOUT_PENALTY_MS } else { 0.0 };
        self.srtt_ms + penalty
    }

    /// The smoothed round-trip time, milliseconds (0 before any sample).
    #[must_use]
    pub fn srtt_ms(&self) -> f64 {
        self.srtt_ms
    }

    /// The retransmission timeout `SRTT + 4·RTTVAR`, milliseconds.
    #[must_use]
    pub fn rto_ms(&self) -> f64 {
        self.rto_ms
    }

    /// Consecutive timeouts since the last successful sample.
    #[must_use]
    pub fn timeout_count(&self) -> u32 {
        self.timeout_count
    }
}

fn calc_rto(srtt_ms: f64, rttvar_ms: f64) -> f64 {
    srtt_ms + RTO_K * rttvar_ms
}

/// The RTT-band policy: nearest servers first, with a tolerance band wide
/// enough that capacity and load still spread proximate traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct RttBand {
    n_servers: usize,
    band_ms: f64,
    /// Per-domain, per-server estimates.
    table: Vec<Vec<RttInfo>>,
    /// DAL-style accumulated hidden load: every assignment immediately
    /// charges the chosen server with the requesting domain's relative
    /// weight, so the very next decision already sees it.
    accumulated: Vec<f64>,
    /// Out-of-range domain indices seen by `select`/feedback — a
    /// caller/policy desync, repaired on demand but counted (surfaced
    /// through the `Probe` layer).
    desyncs: u64,
}

impl RttBand {
    /// Creates the policy for `n_servers` servers, `n_domains` source
    /// domains and a `band_ms`-wide tolerance band.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or the band is not finite and `>= 0`.
    #[must_use]
    pub fn new(n_servers: usize, n_domains: usize, band_ms: f64) -> Self {
        assert!(n_servers > 0, "need at least one server");
        assert!(n_domains > 0, "need at least one domain");
        assert!(band_ms.is_finite() && band_ms >= 0.0, "band must be finite and >= 0 ms");
        RttBand {
            n_servers,
            band_ms,
            table: vec![vec![RttInfo::new(); n_servers]; n_domains],
            accumulated: vec![0.0; n_servers],
            desyncs: 0,
        }
    }

    /// The per-server accumulated hidden load charged by [`assigned`].
    ///
    /// [`assigned`]: SelectionPolicy::assigned
    #[must_use]
    pub fn accumulated(&self) -> &[f64] {
        &self.accumulated
    }

    /// The tolerance band width, milliseconds.
    #[must_use]
    pub fn band_ms(&self) -> f64 {
        self.band_ms
    }

    /// The estimate for one (domain, server) pair, if the domain exists.
    #[must_use]
    pub fn info(&self, domain: usize, server: usize) -> Option<&RttInfo> {
        self.table.get(domain)?.get(server)
    }

    /// Grows the per-domain table on demand when a domain index beyond
    /// the configured count arrives (desync between the caller and the
    /// policy; repaired, never aliased) and returns the usable index.
    fn ensure_domain(&mut self, domain: usize) -> usize {
        if domain >= self.table.len() {
            self.desyncs += 1;
            self.table.resize(domain + 1, vec![RttInfo::new(); self.n_servers]);
        }
        domain
    }
}

impl SelectionPolicy for RttBand {
    fn name(&self) -> &'static str {
        "RTTB"
    }

    fn select(&mut self, ctx: &SchedCtx<'_>, _rng: &mut StreamRng) -> usize {
        let domain = self.ensure_domain(ctx.domain);
        let row = &self.table[domain];
        let n = ctx.num_servers();
        debug_assert_eq!(n, self.n_servers, "server count changed under the policy");
        // Best score over the eligible set.
        let mut best = f64::INFINITY;
        for (s, info) in row.iter().enumerate().take(n) {
            if ctx.eligible(s) {
                best = best.min(info.score_ms());
            }
        }
        // Everyone within the band competes on cost: accumulated hidden
        // load plus current backlog, per unit of relative capacity,
        // re-inflated by the (floored) RTT score. Deterministic minimum —
        // the `assigned` charge moves the minimum between consecutive
        // decisions, so the band spreads by capacity and proximity instead
        // of herding. Sub-25 ms scores are floored so same-region jitter
        // doesn't skew the split.
        let band_top = best + self.band_ms;
        let mut choice = None;
        let mut choice_cost = f64::INFINITY;
        for (s, info) in row.iter().enumerate().take(n) {
            if !ctx.eligible(s) || info.score_ms() > band_top {
                continue;
            }
            let cap = ctx.relative_caps[s];
            if cap <= 0.0 {
                continue;
            }
            // The backlog factor is squared: proximity may concentrate up
            // to the RTT contrast (~5×) while queues are short, but a
            // congested near server must shed toward its farther
            // band-mates *before* the alarm threshold, not after.
            let backlog = 1.0 + ctx.backlogs[s].max(0.0);
            let cost = (COLD_START_LOAD + self.accumulated[s]) * backlog * backlog / cap
                * info.score_ms().max(RTT_COST_FLOOR_MS);
            if choice.is_none() || cost < choice_cost {
                choice = Some(s);
                choice_cost = cost;
            }
        }
        if let Some(s) = choice {
            return s;
        }
        // Degenerate weights (all zero capacity): fall back to the best
        // score itself, lowest index on ties.
        (0..n)
            .filter(|&s| ctx.eligible(s))
            .min_by(|&a, &b| row[a].score_ms().total_cmp(&row[b].score_ms()))
            .unwrap_or(0)
    }

    fn assigned(&mut self, server: usize, rel_weight: f64, _ttl: f64, _now: SimTime) {
        if server < self.n_servers && rel_weight.is_finite() {
            self.accumulated[server] += rel_weight.max(0.0);
        }
    }

    fn observe_rtt(&mut self, domain: usize, server: usize, rtt_s: f64) {
        let domain = self.ensure_domain(domain);
        if server < self.n_servers {
            self.table[domain][server].observe(rtt_s * 1000.0);
        }
    }

    fn observe_timeout(&mut self, domain: usize, server: usize) {
        let domain = self.ensure_domain(domain);
        if server < self.n_servers {
            self.table[domain][server].observe_timeout();
        }
    }

    // The estimator table is keyed by domain, and the domain count never
    // changes mid-run — reclassification is deliberately ignored (the
    // default `on_classes_rebuilt` no-op).

    fn class_desyncs(&self) -> u64 {
        self.desyncs
    }

    fn state_snapshot(&self, _now: geodns_simcore::SimTime, out: &mut Vec<f64>) {
        for row in &self.table {
            out.extend(row.iter().map(RttInfo::score_ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::CtxFixture;
    use super::*;
    use geodns_simcore::RngStreams;

    #[test]
    fn fresh_info_matches_the_unbound_constants() {
        let info = RttInfo::new();
        assert_eq!(info.score_ms(), UNKNOWN_SERVER_NICENESS_MS);
        assert_eq!(info.rto_ms(), UNKNOWN_SERVER_NICENESS_MS);
        assert_eq!(info.timeout_count(), 0);
    }

    #[test]
    fn jacobson_karels_updates() {
        let mut info = RttInfo::new();
        info.observe(100.0);
        assert_eq!(info.srtt_ms(), 100.0);
        assert_eq!(info.rto_ms(), 100.0 + 4.0 * 50.0, "first sample: RTTVAR = R/2");
        info.observe(200.0);
        // SRTT ← 100 + (200-100)/8 = 112.5; RTTVAR ← 50 + (|100-200|-50)/4 = 62.5.
        assert!((info.srtt_ms() - 112.5).abs() < 1e-12);
        assert!((info.rto_ms() - (112.5 + 4.0 * 62.5)).abs() < 1e-12);
    }

    #[test]
    fn non_finite_samples_are_discarded() {
        let mut info = RttInfo::new();
        info.observe(80.0);
        let before = info;
        info.observe(f64::NAN);
        info.observe(f64::INFINITY);
        info.observe(-1.0);
        assert_eq!(info, before);
    }

    #[test]
    fn timeouts_penalize_multiplicatively_then_additively() {
        let mut info = RttInfo::new();
        info.observe(100.0);
        info.observe_timeout();
        assert_eq!(info.srtt_ms(), 200.0, "timeout doubles the SRTT");
        assert_eq!(info.score_ms(), 200.0);
        info.observe_timeout();
        info.observe_timeout();
        assert_eq!(info.srtt_ms(), 800.0);
        assert_eq!(info.score_ms(), 800.0 + 10_000.0, "third timeout adds the penalty");
        // A successful sample clears the streak.
        info.observe(100.0);
        assert_eq!(info.timeout_count(), 0);
        assert!(info.score_ms() < 1000.0);
    }

    #[test]
    fn timeout_backoff_respects_the_clamp() {
        let mut info = RttInfo::new();
        for _ in 0..40 {
            info.observe_timeout();
        }
        assert_eq!(info.srtt_ms(), RTT_MAX_TIMEOUT_MS);
        let mut fresh = RttInfo::new();
        fresh.observe(1.0);
        fresh.observe_timeout();
        assert_eq!(fresh.srtt_ms(), 2.0 * RTT_MIN_TIMEOUT_MS, "floor before doubling");
    }

    #[test]
    fn converges_to_the_nearest_server() {
        let f = CtxFixture::new();
        let mut p = RttBand::new(7, 4, f64::from(DEFAULT_BAND_MS));
        let mut rng = RngStreams::new(3).stream("rttb");
        // Server 2 is 20 ms away; everyone else ~900 ms. Band = 400 ms.
        for s in 0..7 {
            let rtt_s = if s == 2 { 0.020 } else { 0.900 };
            for _ in 0..8 {
                p.observe_rtt(0, s, rtt_s);
            }
        }
        for _ in 0..500 {
            assert_eq!(p.select(&f.ctx(0, 0), &mut rng), 2, "only the near server is in band");
        }
    }

    #[test]
    fn proximity_is_per_domain_not_per_class() {
        let f = CtxFixture::new();
        let mut p = RttBand::new(7, 4, f64::from(DEFAULT_BAND_MS));
        let mut rng = RngStreams::new(8).stream("rttb");
        // Domain 0 sits next to server 2, domain 1 next to server 4 —
        // with everything else a continent away.
        for s in 0..7 {
            for _ in 0..8 {
                p.observe_rtt(0, s, if s == 2 { 0.020 } else { 0.900 });
                p.observe_rtt(1, s, if s == 4 { 0.020 } else { 0.900 });
            }
        }
        for _ in 0..200 {
            // The hot/normal class is identical for both requests: only
            // the domain may steer the answer.
            assert_eq!(p.select(&f.ctx(0, 0), &mut rng), 2);
            assert_eq!(p.select(&f.ctx(1, 0), &mut rng), 4);
        }
    }

    #[test]
    fn nearer_band_members_take_more_traffic() {
        let f = CtxFixture::new();
        let mut p = RttBand::new(7, 4, f64::from(DEFAULT_BAND_MS));
        let mut rng = RngStreams::new(11).stream("rttb");
        // Servers 0 (60 ms) and 2 (300 ms) are both in band; equal-ish
        // capacity (α 1.0 vs 0.8), everyone else far out.
        for s in 0..7 {
            let rtt_s = match s {
                0 => 0.060,
                2 => 0.300,
                _ => 0.900,
            };
            for _ in 0..8 {
                p.observe_rtt(0, s, rtt_s);
            }
        }
        let n = 20_000;
        let mut counts = [0usize; 7];
        for _ in 0..n {
            let s = p.select(&f.ctx(0, 0), &mut rng);
            p.assigned(s, 1.0, 240.0, SimTime::ZERO);
            counts[s] += 1;
        }
        // Equilibrium equalizes (1+A_i)/α_i·rtt_i:
        // (1+A_0)·60 = (1+A_2)/0.8·300 → A_0/A_2 ≈ 6.25 → share ≈ 0.862.
        let share0 = counts[0] as f64 / n as f64;
        assert!(share0 > 0.80, "proximity gradient within the band, got {share0:.3}");
        assert!(counts[2] > 0, "farther band member still serves");
    }

    #[test]
    fn band_members_split_by_capacity_and_load() {
        let mut f = CtxFixture::new();
        let mut p = RttBand::new(7, 1, f64::from(DEFAULT_BAND_MS));
        let mut rng = RngStreams::new(9).stream("rttb");
        // Servers 0 (α=1) and 2 (α=0.8) are equally near (both under the
        // cost's RTT factor is identical, so it cancels); the rest far.
        for s in 0..7 {
            let rtt_s = if s == 0 || s == 2 { 0.030 } else { 0.900 };
            for _ in 0..8 {
                p.observe_rtt(0, s, rtt_s);
            }
        }
        let n = 20_000;
        let mut counts = [0usize; 7];
        for _ in 0..n {
            let s = p.select(&f.ctx(0, 0), &mut rng);
            p.assigned(s, 1.0, 240.0, SimTime::ZERO);
            counts[s] += 1;
        }
        assert_eq!(counts[1] + counts[3] + counts[4] + counts[5] + counts[6], 0);
        let share0 = counts[0] as f64 / n as f64;
        assert!((share0 - 1.0 / 1.8).abs() < 0.02, "α-proportional split, got {share0:.3}");
        // Pile queued work onto server 0: traffic shifts to server 2.
        f.backlogs[0] = 9.0;
        let mut shifted = [0usize; 7];
        for _ in 0..n {
            let s = p.select(&f.ctx(0, 0), &mut rng);
            p.assigned(s, 1.0, 240.0, SimTime::ZERO);
            shifted[s] += 1;
        }
        assert!(
            shifted[2] > shifted[0] * 3,
            "loaded near server yields to its idle band-mate: {shifted:?}"
        );
    }

    #[test]
    fn unknown_servers_are_explored() {
        let f = CtxFixture::new();
        let mut p = RttBand::new(7, 1, f64::from(DEFAULT_BAND_MS));
        let mut rng = RngStreams::new(1).stream("rttb");
        // Server 0 measured at 50 ms; server 1 never measured (niceness
        // 376 ms < 50 + 400) — both must receive traffic.
        for _ in 0..8 {
            p.observe_rtt(0, 0, 0.050);
        }
        let mut counts = [0usize; 7];
        for _ in 0..5_000 {
            let s = p.select(&f.ctx(0, 0), &mut rng);
            p.assigned(s, 1.0, 240.0, SimTime::ZERO);
            counts[s] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0, "unknown server starved: {counts:?}");
    }

    #[test]
    fn selection_is_deterministic() {
        // Same feedback, different RNG streams: identical decisions — the
        // band cost is a deterministic minimum, like DAL.
        let f = CtxFixture::new();
        let mut a = RttBand::new(7, 1, f64::from(DEFAULT_BAND_MS));
        let mut b = a.clone();
        let mut rng_a = RngStreams::new(1).stream("one");
        let mut rng_b = RngStreams::new(99).stream("other");
        for s in 0..7 {
            a.observe_rtt(0, s, 0.010 * (s + 1) as f64);
            b.observe_rtt(0, s, 0.010 * (s + 1) as f64);
        }
        for _ in 0..200 {
            let sa = a.select(&f.ctx(0, 0), &mut rng_a);
            let sb = b.select(&f.ctx(0, 0), &mut rng_b);
            assert_eq!(sa, sb);
            a.assigned(sa, 0.3, 240.0, SimTime::ZERO);
            b.assigned(sb, 0.3, 240.0, SimTime::ZERO);
        }
    }

    #[test]
    fn timed_out_server_leaves_the_band() {
        let f = CtxFixture::new();
        let mut p = RttBand::new(7, 1, f64::from(DEFAULT_BAND_MS));
        let mut rng = RngStreams::new(2).stream("rttb");
        for s in 0..7 {
            for _ in 0..8 {
                p.observe_rtt(0, s, 0.040);
            }
        }
        for _ in 0..MAX_TIMEOUT_COUNT {
            p.observe_timeout(0, 3);
        }
        for _ in 0..2_000 {
            assert_ne!(p.select(&f.ctx(0, 0), &mut rng), 3, "penalized server still chosen");
        }
    }

    #[test]
    fn alarmed_servers_never_chosen() {
        let mut f = CtxFixture::new();
        f.available[0] = false;
        f.available[2] = false;
        let mut p = RttBand::new(7, 2, f64::from(DEFAULT_BAND_MS));
        let mut rng = RngStreams::new(4).stream("rttb");
        for _ in 0..5_000 {
            let s = p.select(&f.ctx(0, 0), &mut rng);
            assert!(s != 0 && s != 2);
        }
    }

    #[test]
    fn all_alarmed_still_answers_and_zero_caps_fall_back() {
        let mut f = CtxFixture::new();
        f.available = vec![false; 7];
        let mut p = RttBand::new(7, 1, f64::from(DEFAULT_BAND_MS));
        let mut rng = RngStreams::new(5).stream("rttb");
        assert!(p.select(&f.ctx(0, 0), &mut rng) < 7);

        let mut f = CtxFixture::new();
        f.relative = vec![0.0; 7];
        for s in 0..7 {
            p.observe_rtt(0, s, if s == 6 { 0.010 } else { 0.900 });
        }
        assert_eq!(p.select(&f.ctx(0, 0), &mut rng), 6, "zero weights fall back to best score");
    }

    #[test]
    fn out_of_range_domain_grows_the_table_and_counts_the_desync() {
        let f = CtxFixture::new();
        let mut p = RttBand::new(7, 1, f64::from(DEFAULT_BAND_MS));
        let mut rng = RngStreams::new(6).stream("rttb");
        assert_eq!(p.class_desyncs(), 0);
        assert!(p.select(&f.ctx(3, 0), &mut rng) < 7);
        assert_eq!(p.class_desyncs(), 1, "out-of-range domain is a counted desync");
        assert!(p.info(3, 0).is_some(), "table grew to cover the domain");
        // Feedback paths repair (and count) the same way.
        p.observe_rtt(5, 0, 0.1);
        assert_eq!(p.class_desyncs(), 2);
        assert!(p.info(5, 0).is_some());
    }

    #[test]
    fn reclassification_leaves_the_domain_table_alone() {
        let mut p = RttBand::new(7, 4, f64::from(DEFAULT_BAND_MS));
        p.observe_rtt(0, 1, 0.075);
        p.observe_rtt(3, 1, 0.200);
        // The hot/normal classifier rebuilding (any class count) must not
        // disturb per-domain estimates — geography outlives load shifts.
        p.on_classes_rebuilt(1);
        p.on_classes_rebuilt(2);
        assert!((p.info(0, 1).unwrap().srtt_ms() - 75.0).abs() < 1e-12);
        assert!((p.info(3, 1).unwrap().srtt_ms() - 200.0).abs() < 1e-12);
        assert_eq!(p.info(2, 0).unwrap().score_ms(), UNKNOWN_SERVER_NICENESS_MS);
        assert_eq!(p.class_desyncs(), 0);
    }

    #[test]
    fn name_and_band() {
        let p = RttBand::new(1, 1, 250.0);
        assert_eq!(p.name(), "RTTB");
        assert_eq!(p.band_ms(), 250.0);
    }
}
