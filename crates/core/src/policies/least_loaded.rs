//! Least-loaded baseline (omniscient; extension beyond the paper).

use geodns_simcore::StreamRng;

use super::{SchedCtx, SelectionPolicy};

/// Picks the eligible server with the smallest capacity-normalized backlog
/// (seconds of queued work). This assumes the DNS can see instantaneous
/// queue state — unrealistic for a real DNS (which is exactly the paper's
/// point) but a useful upper-ish reference in the comparison benches.
///
/// Note it still suffers the paper's core problem: the DNS only controls
/// address requests, so even perfect instantaneous placement cannot undo
/// the hidden load that cached mappings keep steering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        LeastLoaded
    }
}

impl SelectionPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "LL"
    }

    fn select(&mut self, ctx: &SchedCtx<'_>, _rng: &mut StreamRng) -> usize {
        let mut best = 0;
        let mut best_score = f64::INFINITY;
        for s in 0..ctx.num_servers() {
            if !ctx.eligible(s) {
                continue;
            }
            if ctx.backlogs[s] < best_score {
                best_score = ctx.backlogs[s];
                best = s;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::CtxFixture;
    use super::*;
    use geodns_simcore::RngStreams;

    #[test]
    fn picks_minimum_backlog() {
        let mut f = CtxFixture::new();
        f.backlogs = vec![3.0, 1.0, 2.0, 5.0, 9.0, 0.5, 4.0];
        let mut p = LeastLoaded::new();
        let mut rng = RngStreams::new(1).stream("ll");
        assert_eq!(p.select(&f.ctx(0, 0), &mut rng), 5);
    }

    #[test]
    fn ties_go_to_lowest_index() {
        let mut f = CtxFixture::new();
        f.backlogs = vec![0.0; 7];
        let mut p = LeastLoaded::new();
        let mut rng = RngStreams::new(1).stream("ll");
        assert_eq!(p.select(&f.ctx(0, 0), &mut rng), 0);
    }

    #[test]
    fn respects_alarms() {
        let mut f = CtxFixture::new();
        f.backlogs = vec![0.0; 7];
        f.available[0] = false;
        let mut p = LeastLoaded::new();
        let mut rng = RngStreams::new(1).stream("ll");
        assert_eq!(p.select(&f.ctx(0, 0), &mut rng), 1);
    }
}
