//! Minimum residual load (MRL).

use geodns_simcore::{SimTime, StreamRng};

use super::{SchedCtx, SelectionPolicy};

/// One live mapping: a domain bound to a server until `expiry`, carrying
/// `weight` of hidden load spread over `ttl` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Binding {
    expiry: SimTime,
    weight: f64,
    ttl: f64,
}

/// MRL, the second homogeneous-site policy the paper inherits from
/// ICDCS'97: each server's *residual load* is the hidden-load weight of its
/// still-live mappings, discounted by how much of each mapping's TTL has
/// already elapsed. Selection picks the minimum residual per unit capacity.
///
/// Unlike [`Dal`](super::Dal), MRL forgets expired mappings, so it adapts —
/// but it still ignores the nonuniform TTL leverage that adaptive TTL
/// exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct Mrl {
    bindings: Vec<Vec<Binding>>,
}

impl Mrl {
    /// Creates an MRL state over `n_servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n_servers == 0`.
    #[must_use]
    pub fn new(n_servers: usize) -> Self {
        assert!(n_servers > 0, "need at least one server");
        Mrl { bindings: vec![Vec::new(); n_servers] }
    }

    /// The residual load of server `s` at time `now`.
    #[must_use]
    pub fn residual(&self, s: usize, now: SimTime) -> f64 {
        self.bindings[s]
            .iter()
            .filter(|b| b.expiry > now)
            .map(|b| b.weight * ((b.expiry - now) / b.ttl).clamp(0.0, 1.0))
            .sum()
    }

    fn prune(&mut self, now: SimTime) {
        for list in &mut self.bindings {
            list.retain(|b| b.expiry > now);
        }
    }
}

impl SelectionPolicy for Mrl {
    fn name(&self) -> &'static str {
        "MRL"
    }

    fn select(&mut self, ctx: &SchedCtx<'_>, _rng: &mut StreamRng) -> usize {
        self.prune(ctx.now);
        let mut best = None;
        let mut best_score = f64::INFINITY;
        for s in 0..ctx.num_servers() {
            if !ctx.eligible(s) {
                continue;
            }
            let score = self.residual(s, ctx.now) / ctx.capacities[s];
            if score < best_score {
                best_score = score;
                best = Some(s);
            }
        }
        best.unwrap_or(0)
    }

    fn assigned(&mut self, server: usize, rel_weight: f64, ttl: f64, now: SimTime) {
        if ttl > 0.0 {
            self.bindings[server].push(Binding { expiry: now + ttl, weight: rel_weight, ttl });
        }
    }

    fn state_snapshot(&self, now: SimTime, out: &mut Vec<f64>) {
        out.extend((0..self.bindings.len()).map(|s| self.residual(s, now)));
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::CtxFixture;
    use super::*;
    use geodns_simcore::RngStreams;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn residual_decays_linearly() {
        let mut mrl = Mrl::new(1);
        mrl.assigned(0, 1.0, 100.0, t(0.0));
        assert!((mrl.residual(0, t(0.0)) - 1.0).abs() < 1e-12);
        assert!((mrl.residual(0, t(50.0)) - 0.5).abs() < 1e-12);
        assert_eq!(mrl.residual(0, t(100.0)), 0.0);
    }

    #[test]
    fn expired_bindings_are_forgotten() {
        let f = CtxFixture::new();
        let mut mrl = Mrl::new(7);
        let mut rng = RngStreams::new(1).stream("mrl");
        mrl.assigned(0, 10.0, 10.0, t(0.0));
        // Long after expiry, server 0 is attractive again.
        let mut ctx = f.ctx(0, 0);
        ctx.now = t(1000.0);
        let s = mrl.select(&ctx, &mut rng);
        assert_eq!(s, 0, "expired load no longer repels; strongest wins ties");
    }

    #[test]
    fn loaded_server_avoided() {
        let f = CtxFixture::new();
        let mut mrl = Mrl::new(7);
        let mut rng = RngStreams::new(2).stream("mrl");
        mrl.assigned(0, 5.0, 1000.0, t(0.0));
        let s = mrl.select(&f.ctx(0, 0), &mut rng);
        assert_ne!(s, 0);
    }

    #[test]
    fn respects_alarms() {
        let mut f = CtxFixture::new();
        f.available = vec![false, true, false, false, false, false, false];
        let mut mrl = Mrl::new(7);
        let mut rng = RngStreams::new(3).stream("mrl");
        assert_eq!(mrl.select(&f.ctx(0, 0), &mut rng), 1);
    }

    #[test]
    fn zero_ttl_assignments_ignored() {
        let mut mrl = Mrl::new(1);
        mrl.assigned(0, 1.0, 0.0, t(0.0));
        assert_eq!(mrl.residual(0, t(0.0)), 0.0);
    }
}
