//! Minimum dynamically-accumulated load (DAL).

use geodns_simcore::{SimTime, StreamRng};

use super::{SchedCtx, SelectionPolicy};

/// DAL from the companion homogeneous-site paper (ICDCS'97), in the
/// capacity-scaled form Figure 3 evaluates: every DNS-routed request adds
/// its domain's hidden-load weight to the chosen server's accumulator, and
/// selection picks the server with minimum `accumulated / C_i`.
///
/// The accumulator never drains, which is exactly why the policy misjudges
/// heterogeneous sites — old assignments weigh forever — and why the paper
/// proposes adaptive TTL instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Dal {
    accumulated: Vec<f64>,
}

impl Dal {
    /// Creates a DAL state over `n_servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n_servers == 0`.
    #[must_use]
    pub fn new(n_servers: usize) -> Self {
        assert!(n_servers > 0, "need at least one server");
        Dal { accumulated: vec![0.0; n_servers] }
    }

    /// The current per-server accumulated hidden load.
    #[must_use]
    pub fn accumulated(&self) -> &[f64] {
        &self.accumulated
    }
}

impl SelectionPolicy for Dal {
    fn name(&self) -> &'static str {
        "DAL"
    }

    fn select(&mut self, ctx: &SchedCtx<'_>, _rng: &mut StreamRng) -> usize {
        let mut best = None;
        let mut best_score = f64::INFINITY;
        for s in 0..ctx.num_servers() {
            if !ctx.eligible(s) {
                continue;
            }
            let score = self.accumulated[s] / ctx.capacities[s];
            if score < best_score {
                best_score = score;
                best = Some(s);
            }
        }
        best.unwrap_or(0)
    }

    fn assigned(&mut self, server: usize, rel_weight: f64, _ttl: f64, _now: SimTime) {
        self.accumulated[server] += rel_weight;
    }

    fn state_snapshot(&self, _now: SimTime, out: &mut Vec<f64>) {
        out.extend_from_slice(&self.accumulated);
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::CtxFixture;
    use super::*;
    use geodns_simcore::RngStreams;

    #[test]
    fn prefers_untouched_capacity() {
        let f = CtxFixture::new();
        let mut dal = Dal::new(7);
        let mut rng = RngStreams::new(1).stream("dal");
        // Repeated heavy assignments rotate across servers instead of
        // hammering one.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..7 {
            let s = dal.select(&f.ctx(0, 0), &mut rng);
            dal.assigned(s, 0.5, 240.0, SimTime::ZERO);
            seen.insert(s);
        }
        assert_eq!(seen.len(), 7, "every server received one heavy mapping");
    }

    #[test]
    fn capacity_scaling_biases_toward_strong_servers() {
        let f = CtxFixture::new(); // C = [100, 100, 80, 80, 50, 50, 50]
        let mut dal = Dal::new(7);
        let mut rng = RngStreams::new(2).stream("dal");
        let mut counts = [0usize; 7];
        for _ in 0..1000 {
            let s = dal.select(&f.ctx(0, 0), &mut rng);
            dal.assigned(s, 1.0, 240.0, SimTime::ZERO);
            counts[s] += 1;
        }
        // Long-run shares ∝ capacity: strong servers get about twice the
        // assignments of the weak ones.
        let strong = counts[0] as f64;
        let weak = counts[6] as f64;
        assert!((strong / weak - 2.0).abs() < 0.3, "ratio {}", strong / weak);
    }

    #[test]
    fn respects_alarms() {
        let mut f = CtxFixture::new();
        f.available[0] = false;
        let mut dal = Dal::new(7);
        let mut rng = RngStreams::new(3).stream("dal");
        for _ in 0..100 {
            let s = dal.select(&f.ctx(0, 0), &mut rng);
            assert_ne!(s, 0);
            dal.assigned(s, 0.1, 240.0, SimTime::ZERO);
        }
    }

    #[test]
    fn accumulator_tracks_assignments() {
        let mut dal = Dal::new(2);
        dal.assigned(1, 0.25, 240.0, SimTime::ZERO);
        dal.assigned(1, 0.25, 240.0, SimTime::ZERO);
        assert_eq!(dal.accumulated(), &[0.0, 0.5]);
    }
}
