//! Random-choice baselines (extensions beyond the paper).

use geodns_simcore::StreamRng;
use rand::Rng;

use super::{SchedCtx, SelectionPolicy};

/// Uniform random selection over the eligible servers — the memoryless
/// baseline modern GeoDNS implementations sometimes ship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RandomChoice;

impl RandomChoice {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        RandomChoice
    }
}

impl SelectionPolicy for RandomChoice {
    fn name(&self) -> &'static str {
        "RAND"
    }

    fn select(&mut self, ctx: &SchedCtx<'_>, rng: &mut StreamRng) -> usize {
        // Two passes instead of collecting the eligible set: the DNS
        // decision sits on the simulation hot path, which must not allocate.
        // Draws the same single `gen_range` the collecting version did.
        let count = (0..ctx.num_servers()).filter(|&s| ctx.eligible(s)).count();
        let k = rng.gen_range(0..count);
        (0..ctx.num_servers())
            .filter(|&s| ctx.eligible(s))
            .nth(k)
            .expect("k drawn from the eligible count")
    }
}

/// Capacity-weighted random selection: server `S_i` is chosen with
/// probability `α_i / Σα` among the eligible — the stateless analogue of
/// PRR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WeightedRandom;

impl WeightedRandom {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        WeightedRandom
    }
}

impl SelectionPolicy for WeightedRandom {
    fn name(&self) -> &'static str {
        "WRAND"
    }

    fn select(&mut self, ctx: &SchedCtx<'_>, rng: &mut StreamRng) -> usize {
        let total: f64 =
            (0..ctx.num_servers()).filter(|&s| ctx.eligible(s)).map(|s| ctx.relative_caps[s]).sum();
        let mut u = rng.gen::<f64>() * total;
        let mut fallback = 0;
        for s in 0..ctx.num_servers() {
            if !ctx.eligible(s) {
                continue;
            }
            fallback = s;
            if u <= ctx.relative_caps[s] {
                return s;
            }
            u -= ctx.relative_caps[s];
        }
        fallback
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::CtxFixture;
    use super::*;
    use geodns_simcore::RngStreams;

    #[test]
    fn uniform_random_is_roughly_uniform() {
        let f = CtxFixture::new();
        let mut p = RandomChoice::new();
        let mut rng = RngStreams::new(1).stream("rand");
        let n = 70_000;
        let mut counts = [0usize; 7];
        for _ in 0..n {
            counts[p.select(&f.ctx(0, 0), &mut rng)] += 1;
        }
        for c in counts {
            let share = c as f64 / n as f64;
            assert!((share - 1.0 / 7.0).abs() < 0.01, "share {share}");
        }
    }

    #[test]
    fn weighted_random_tracks_capacity() {
        let f = CtxFixture::new();
        let mut p = WeightedRandom::new();
        let mut rng = RngStreams::new(2).stream("wrand");
        let n = 140_000;
        let mut counts = [0usize; 7];
        for _ in 0..n {
            counts[p.select(&f.ctx(0, 0), &mut rng)] += 1;
        }
        let alpha_sum: f64 = f.relative.iter().sum();
        for (s, &count) in counts.iter().enumerate() {
            let share = count as f64 / n as f64;
            let expect = f.relative[s] / alpha_sum;
            assert!((share - expect).abs() < 0.01, "server {s}: {share} vs {expect}");
        }
    }

    #[test]
    fn both_respect_alarms() {
        let mut f = CtxFixture::new();
        f.available = vec![false, false, true, false, false, false, false];
        let mut rng = RngStreams::new(3).stream("r");
        for _ in 0..1000 {
            assert_eq!(RandomChoice::new().select(&f.ctx(0, 0), &mut rng), 2);
            assert_eq!(WeightedRandom::new().select(&f.ctx(0, 0), &mut rng), 2);
        }
    }
}
