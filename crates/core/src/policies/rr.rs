//! Round-robin and two-tier round-robin.

use geodns_simcore::StreamRng;

use super::{SchedCtx, SelectionPolicy};

/// Walks from `start + 1` forward (wrapping) to the first index `s` with
/// `ctx.eligible(s)`. Always terminates because `eligible` falls back to
/// "everything" when all servers are alarmed.
pub(crate) fn next_eligible(start: usize, ctx: &SchedCtx<'_>) -> usize {
    let n = ctx.num_servers();
    for off in 1..=n {
        let s = (start + off) % n;
        if ctx.eligible(s) {
            return s;
        }
    }
    (start + 1) % n
}

/// The conventional DNS round-robin scheduler (NCSA-style), the paper's
/// lower bound: one global pointer, no awareness of domains or capacities.
///
/// # Examples
///
/// ```
/// use geodns_core::{RoundRobin, SchedCtx, SelectionPolicy};
/// use geodns_simcore::{RngStreams, SimTime};
///
/// let mut rr = RoundRobin::new(3);
/// let weights = [1.0]; let caps = [1.0, 1.0, 1.0];
/// let abs = [10.0, 10.0, 10.0]; let avail = [true; 3]; let back = [0.0; 3];
/// let ctx = SchedCtx { domain: 0, class: 0, weights: &weights,
///     relative_caps: &caps, capacities: &abs, available: &avail,
///     backlogs: &back, now: SimTime::ZERO };
/// let mut rng = RngStreams::new(1).stream("rr");
/// assert_eq!(rr.select(&ctx, &mut rng), 0);
/// assert_eq!(rr.select(&ctx, &mut rng), 1);
/// assert_eq!(rr.select(&ctx, &mut rng), 2);
/// assert_eq!(rr.select(&ctx, &mut rng), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobin {
    last: usize,
}

impl RoundRobin {
    /// Creates a round-robin pointer over `n_servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n_servers == 0`.
    #[must_use]
    pub fn new(n_servers: usize) -> Self {
        assert!(n_servers > 0, "need at least one server");
        RoundRobin { last: n_servers - 1 }
    }
}

impl SelectionPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "RR"
    }

    fn select(&mut self, ctx: &SchedCtx<'_>, _rng: &mut StreamRng) -> usize {
        let s = next_eligible(self.last, ctx);
        self.last = s;
        s
    }

    fn state_snapshot(&self, _now: geodns_simcore::SimTime, out: &mut Vec<f64>) {
        out.push(self.last as f64);
    }
}

/// Two-tier round-robin (RR2, from the companion ICDCS'97 paper): an
/// independent round-robin pointer per domain class, reducing "the
/// probability that requests from the hot domains are assigned too
/// frequently to the same server".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobin2 {
    n_servers: usize,
    last: Vec<usize>,
    desyncs: u64,
}

impl RoundRobin2 {
    /// Creates per-class pointers over `n_servers` servers and `n_classes`
    /// domain classes.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    #[must_use]
    pub fn new(n_servers: usize, n_classes: usize) -> Self {
        assert!(n_servers > 0, "need at least one server");
        assert!(n_classes > 0, "need at least one class");
        RoundRobin2 {
            n_servers,
            // Stagger the starting pointers so classes don't move in lockstep.
            last: (0..n_classes).map(|c| (n_servers - 1 + c) % n_servers).collect(),
            desyncs: 0,
        }
    }

    /// Grows the pointer table for a class index beyond the current
    /// classification (classifier/policy desync) instead of clamping onto
    /// the last pointer, and counts the incident. Same repair as
    /// `ProbabilisticRr2`.
    fn ensure_class(&mut self, class: usize) -> usize {
        if class >= self.last.len() {
            self.desyncs += 1;
            let n = self.n_servers;
            let have = self.last.len();
            self.last.extend((have..=class).map(|c| (n - 1 + c) % n));
        }
        class
    }
}

impl SelectionPolicy for RoundRobin2 {
    fn name(&self) -> &'static str {
        "RR2"
    }

    fn select(&mut self, ctx: &SchedCtx<'_>, _rng: &mut StreamRng) -> usize {
        let class = self.ensure_class(ctx.class);
        let s = next_eligible(self.last[class], ctx);
        self.last[class] = s;
        s
    }

    fn on_classes_rebuilt(&mut self, n_classes: usize) {
        if n_classes != self.last.len() && n_classes > 0 {
            self.last = (0..n_classes).map(|c| (self.n_servers - 1 + c) % self.n_servers).collect();
        }
    }

    fn class_desyncs(&self) -> u64 {
        self.desyncs
    }

    fn state_snapshot(&self, _now: geodns_simcore::SimTime, out: &mut Vec<f64>) {
        out.extend(self.last.iter().map(|&p| p as f64));
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::CtxFixture;
    use super::*;
    use geodns_simcore::RngStreams;

    #[test]
    fn rr_cycles_all_servers() {
        let f = CtxFixture::new();
        let mut rr = RoundRobin::new(7);
        let mut rng = RngStreams::new(1).stream("t");
        let picks: Vec<usize> = (0..14).map(|_| rr.select(&f.ctx(0, 0), &mut rng)).collect();
        assert_eq!(&picks[..7], &[0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(&picks[7..], &[0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn rr_skips_alarmed() {
        let mut f = CtxFixture::new();
        f.available[1] = false;
        f.available[2] = false;
        let mut rr = RoundRobin::new(7);
        let mut rng = RngStreams::new(1).stream("t");
        let picks: Vec<usize> = (0..5).map(|_| rr.select(&f.ctx(0, 0), &mut rng)).collect();
        assert_eq!(picks, vec![0, 3, 4, 5, 6]);
    }

    #[test]
    fn rr_all_alarmed_still_answers() {
        let mut f = CtxFixture::new();
        f.available = vec![false; 7];
        let mut rr = RoundRobin::new(7);
        let mut rng = RngStreams::new(1).stream("t");
        let s = rr.select(&f.ctx(0, 0), &mut rng);
        assert!(s < 7);
    }

    #[test]
    fn rr2_pointers_are_independent() {
        let f = CtxFixture::new();
        let mut rr2 = RoundRobin2::new(7, 2);
        let mut rng = RngStreams::new(1).stream("t");
        let hot1 = rr2.select(&f.ctx(0, 0), &mut rng);
        let cold1 = rr2.select(&f.ctx(3, 1), &mut rng);
        let hot2 = rr2.select(&f.ctx(0, 0), &mut rng);
        // The hot pointer advances by exactly one regardless of cold picks.
        assert_eq!(hot2, (hot1 + 1) % 7);
        assert_ne!(hot1, cold1, "staggered starting points");
    }

    #[test]
    fn rr2_rebuild_changes_class_count() {
        let f = CtxFixture::new();
        let mut rr2 = RoundRobin2::new(7, 2);
        rr2.on_classes_rebuilt(1);
        let mut rng = RngStreams::new(1).stream("t");
        // A class index beyond the pointer table grows the table (with the
        // staggered-start formula) instead of aliasing onto the last
        // pointer, and the desync is counted.
        let s = rr2.select(&f.ctx(0, 1), &mut rng);
        assert_eq!(s, 1, "class 1 restarts from the staggered pointer (7-1+1)%7");
        assert_eq!(rr2.class_desyncs(), 1);
        // Class 0's own pointer was left alone by the repair.
        assert_eq!(rr2.select(&f.ctx(0, 0), &mut rng), 0);
        // The repaired class is now in range: no further desync.
        assert_eq!(rr2.select(&f.ctx(0, 1), &mut rng), 2);
        assert_eq!(rr2.class_desyncs(), 1);
    }

    #[test]
    fn names() {
        assert_eq!(RoundRobin::new(1).name(), "RR");
        assert_eq!(RoundRobin2::new(1, 1).name(), "RR2");
    }
}
