//! DNS server-selection policies.
//!
//! Every policy answers "which server does this address request map to?"
//! given the request's source-domain class, the current hidden-load
//! estimates, the capacity layout, and the alarm-availability mask. The
//! paper's policies:
//!
//! * [`RoundRobin`] — the conventional DNS round-robin (lower bound).
//! * [`RoundRobin2`] — two-tier RR: an independent pointer per domain
//!   class, so hot domains don't repeatedly land on the same server.
//! * [`ProbabilisticRr`] / [`ProbabilisticRr2`] — PRR/PRR2: walking in RR
//!   order, server `S_i` is accepted with probability `α_i`, so weaker
//!   servers are skipped proportionally often (§3.1).
//! * [`Dal`] — minimum dynamically-accumulated load, capacity-scaled: the
//!   homogeneous-site policy the paper shows failing on heterogeneity.
//! * [`Mrl`] — minimum residual load over still-live mappings.
//!
//! Plus modern baselines kept for comparison benches: [`RandomChoice`],
//! [`WeightedRandom`], [`LeastLoaded`] — and the proximity-aware
//! extension the paper couldn't study, [`RttBand`] (ROADMAP item 2):
//! Unbound-style selection over per-(class × server) Jacobson/Karels RTT
//! estimates fed back through [`SelectionPolicy::observe_rtt`] /
//! [`SelectionPolicy::observe_timeout`].
//!
//! All policies honour the alarm mask: an alarmed server is only eligible
//! when *every* server is alarmed (the site must answer something).

mod dal;
mod least_loaded;
mod mrl;
mod prr;
mod random;
mod rr;
mod rtt;

pub use dal::Dal;
pub use least_loaded::LeastLoaded;
pub use mrl::Mrl;
pub use prr::{ProbabilisticRr, ProbabilisticRr2};
pub use random::{RandomChoice, WeightedRandom};
pub use rr::{RoundRobin, RoundRobin2};
pub use rtt::{RttBand, RttInfo, DEFAULT_BAND_MS, UNKNOWN_SERVER_NICENESS_MS};

use geodns_simcore::{SimTime, StreamRng};
use serde::{Deserialize, Serialize};

/// Everything a policy may consult when picking a server.
#[derive(Debug, Clone, Copy)]
pub struct SchedCtx<'a> {
    /// Source domain of the address request.
    pub domain: usize,
    /// The domain's *selection* class (two-tier hot/normal for the `*2`
    /// policies; 0 when undifferentiated).
    pub class: usize,
    /// Current per-domain hidden-load estimates (hits/s).
    pub weights: &'a [f64],
    /// Relative server capacities `α_i` (decreasing, `α_1 = 1`).
    pub relative_caps: &'a [f64],
    /// Absolute server capacities `C_i` (hits/s).
    pub capacities: &'a [f64],
    /// Per-server eligibility after alarm exclusion. Guaranteed non-empty;
    /// if all entries are `false` the caller treats every server as
    /// eligible.
    pub available: &'a [bool],
    /// Per-server backlog normalized by capacity (seconds of queued work).
    pub backlogs: &'a [f64],
    /// The current simulation time.
    pub now: SimTime,
}

impl<'a> SchedCtx<'a> {
    /// Number of servers.
    #[must_use]
    pub fn num_servers(&self) -> usize {
        self.relative_caps.len()
    }

    /// Whether server `s` may be chosen (alarm mask with all-alarmed
    /// fallback).
    #[must_use]
    pub fn eligible(&self, s: usize) -> bool {
        self.available[s] || self.available.iter().all(|&a| !a)
    }

    /// The relative hidden-load weight of the requesting domain
    /// (`ω_j / Σω`) — what DAL/MRL accumulate.
    #[must_use]
    pub fn relative_weight(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        if total > 0.0 {
            self.weights[self.domain] / total
        } else {
            0.0
        }
    }
}

/// A DNS server-selection policy.
pub trait SelectionPolicy: Send {
    /// The policy's base name as the paper writes it (`"RR"`, `"PRR2"`, …).
    fn name(&self) -> &'static str;

    /// Picks a server for one address request.
    fn select(&mut self, ctx: &SchedCtx<'_>, rng: &mut StreamRng) -> usize;

    /// Informs the policy of the final assignment (server, the domain's
    /// relative hidden-load weight, the TTL attached to the answer).
    /// Stateful policies (DAL, MRL) accumulate here; stateless ones ignore
    /// it.
    fn assigned(&mut self, _server: usize, _rel_weight: f64, _ttl: f64, _now: SimTime) {}

    /// Called when the domain classification is rebuilt (the number of
    /// selection classes may change).
    fn on_classes_rebuilt(&mut self, _n_classes: usize) {}

    /// Feeds back one measured network round-trip (seconds) between the
    /// source `domain` and `server`. Only proximity-aware policies
    /// ([`RttBand`]) listen; everyone else ignores it.
    fn observe_rtt(&mut self, _domain: usize, _server: usize, _rtt_s: f64) {}

    /// Feeds back one timeout (failed page) for a request from `domain`
    /// aimed at `server` — the liveness signal proximity-aware policies
    /// turn into a multiplicative SRTT penalty.
    fn observe_timeout(&mut self, _domain: usize, _server: usize) {}

    /// Number of index desyncs repaired so far: `select` or a feedback
    /// call arrived with a class (or domain) index beyond the policy's
    /// per-index state. Surfaced through the `Probe` layer; stateless and
    /// single-tier policies report 0.
    fn class_desyncs(&self) -> u64 {
        0
    }

    /// Appends an opaque numeric snapshot of the policy's mutable state to
    /// `out` — pointer positions for the RR family, accumulated load for
    /// DAL, per-server residual load for MRL. Decision recorders attach it
    /// to traces; the semantics are policy-specific and only meaningful
    /// relative to other snapshots of the same policy. Stateless policies
    /// use this default and append nothing.
    fn state_snapshot(&self, _now: SimTime, _out: &mut Vec<f64>) {}
}

/// Serializable policy selector, turned into a live policy with
/// [`PolicyKind::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Conventional round-robin.
    Rr,
    /// Two-tier round-robin.
    Rr2,
    /// Probabilistic round-robin (capacity-skipping).
    Prr,
    /// Two-tier probabilistic round-robin.
    Prr2,
    /// Minimum dynamically-accumulated load (capacity-scaled).
    Dal,
    /// Minimum residual load over live mappings (capacity-scaled).
    Mrl,
    /// Uniform random choice (baseline).
    Random,
    /// Capacity-weighted random choice (baseline).
    WeightedRandom,
    /// Least normalized backlog (omniscient baseline).
    LeastLoaded,
    /// Proximity-aware RTT-band selection (extension, ROADMAP item 2):
    /// servers within `band_ms` of the best smoothed RTT compete on
    /// accumulated hidden load, capacity, and proximity.
    RttBand {
        /// Tolerance band width in milliseconds.
        band_ms: u32,
    },
}

impl PolicyKind {
    /// Instantiates the policy for `n_servers` servers, `n_classes`
    /// selection classes, and `n_domains` source domains (the granularity
    /// the proximity-aware [`RttBand`] keys its estimator table by).
    #[must_use]
    pub fn build(
        self,
        n_servers: usize,
        n_classes: usize,
        n_domains: usize,
    ) -> Box<dyn SelectionPolicy> {
        match self {
            PolicyKind::Rr => Box::new(RoundRobin::new(n_servers)),
            PolicyKind::Rr2 => Box::new(RoundRobin2::new(n_servers, n_classes)),
            PolicyKind::Prr => Box::new(ProbabilisticRr::new(n_servers)),
            PolicyKind::Prr2 => Box::new(ProbabilisticRr2::new(n_servers, n_classes)),
            PolicyKind::Dal => Box::new(Dal::new(n_servers)),
            PolicyKind::Mrl => Box::new(Mrl::new(n_servers)),
            PolicyKind::Random => Box::new(RandomChoice::new()),
            PolicyKind::WeightedRandom => Box::new(WeightedRandom::new()),
            PolicyKind::LeastLoaded => Box::new(LeastLoaded::new()),
            PolicyKind::RttBand { band_ms } => {
                Box::new(RttBand::new(n_servers, n_domains, f64::from(band_ms)))
            }
        }
    }

    /// The paper-style base name.
    #[must_use]
    pub fn paper_name(self) -> &'static str {
        match self {
            PolicyKind::Rr => "RR",
            PolicyKind::Rr2 => "RR2",
            PolicyKind::Prr => "PRR",
            PolicyKind::Prr2 => "PRR2",
            PolicyKind::Dal => "DAL",
            PolicyKind::Mrl => "MRL",
            PolicyKind::Random => "RAND",
            PolicyKind::WeightedRandom => "WRAND",
            PolicyKind::LeastLoaded => "LL",
            PolicyKind::RttBand { .. } => "RTTB",
        }
    }

    /// Whether the policy differentiates hot/normal source domains (and
    /// therefore needs the two-tier classifier). RTT-band is *not*
    /// two-tier: it differentiates sources at full per-domain granularity
    /// (its estimator table is keyed by (domain, server) — geography does
    /// not follow the hot/normal load split).
    #[must_use]
    pub fn is_two_tier(self) -> bool {
        matches!(self, PolicyKind::Rr2 | PolicyKind::Prr2)
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::SchedCtx;
    use geodns_simcore::SimTime;

    /// A 7-server, 4-domain context with everything available.
    pub struct CtxFixture {
        pub weights: Vec<f64>,
        pub relative: Vec<f64>,
        pub absolute: Vec<f64>,
        pub available: Vec<bool>,
        pub backlogs: Vec<f64>,
    }

    impl CtxFixture {
        pub fn new() -> Self {
            let relative = vec![1.0, 1.0, 0.8, 0.8, 0.5, 0.5, 0.5];
            let absolute: Vec<f64> = relative.iter().map(|a| a * 100.0).collect();
            CtxFixture {
                weights: vec![40.0, 20.0, 10.0, 5.0],
                relative,
                absolute,
                available: vec![true; 7],
                backlogs: vec![0.0; 7],
            }
        }

        pub fn ctx(&self, domain: usize, class: usize) -> SchedCtx<'_> {
            SchedCtx {
                domain,
                class,
                weights: &self.weights,
                relative_caps: &self.relative,
                capacities: &self.absolute,
                available: &self.available,
                backlogs: &self.backlogs,
                now: SimTime::ZERO,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_builds_every_policy() {
        for kind in [
            PolicyKind::Rr,
            PolicyKind::Rr2,
            PolicyKind::Prr,
            PolicyKind::Prr2,
            PolicyKind::Dal,
            PolicyKind::Mrl,
            PolicyKind::Random,
            PolicyKind::WeightedRandom,
            PolicyKind::LeastLoaded,
            PolicyKind::RttBand { band_ms: 400 },
        ] {
            let p = kind.build(7, 2, 4);
            assert_eq!(p.name(), kind.paper_name());
        }
    }

    #[test]
    fn two_tier_flag() {
        assert!(PolicyKind::Rr2.is_two_tier());
        assert!(PolicyKind::Prr2.is_two_tier());
        assert!(!PolicyKind::RttBand { band_ms: 400 }.is_two_tier(), "per-domain, not per-class");
        assert!(!PolicyKind::Rr.is_two_tier());
        assert!(!PolicyKind::Dal.is_two_tier());
    }

    #[test]
    fn eligible_falls_back_when_all_alarmed() {
        let fixture = test_util::CtxFixture::new();
        let mut f = fixture;
        f.available = vec![false; 7];
        let ctx = f.ctx(0, 0);
        assert!(ctx.eligible(3), "all-alarmed means everything is eligible");
    }

    #[test]
    fn relative_weight_normalizes() {
        let f = test_util::CtxFixture::new();
        let ctx = f.ctx(0, 0);
        assert!((ctx.relative_weight() - 40.0 / 75.0).abs() < 1e-12);
    }

    /// Every policy must terminate and return a valid server even when the
    /// alarm/liveness mask excludes *all* servers — the site must answer
    /// something (regression for the all-excluded fallback).
    #[test]
    fn every_policy_answers_with_all_servers_excluded() {
        use geodns_simcore::RngStreams;

        for kind in [
            PolicyKind::Rr,
            PolicyKind::Rr2,
            PolicyKind::Prr,
            PolicyKind::Prr2,
            PolicyKind::Dal,
            PolicyKind::Mrl,
            PolicyKind::Random,
            PolicyKind::WeightedRandom,
            PolicyKind::LeastLoaded,
            PolicyKind::RttBand { band_ms: 400 },
        ] {
            let mut f = test_util::CtxFixture::new();
            f.available = vec![false; 7];
            let mut policy = kind.build(7, 2, 4);
            let mut rng = RngStreams::new(123).stream("excluded");
            for i in 0..200 {
                let s = policy.select(&f.ctx(i % 4, i % 2), &mut rng);
                assert!(s < 7, "{} returned out-of-range server {s}", policy.name());
                policy.assigned(s, f.ctx(i % 4, i % 2).relative_weight(), 60.0, SimTime::ZERO);
            }
        }
    }

    /// When every acceptance draw fails (near-zero relative capacities),
    /// the probabilistic walk must exhaust its cap and fall back to the
    /// next eligible server instead of spinning forever.
    #[test]
    fn probabilistic_walk_cap_exhaustion_falls_back() {
        use geodns_simcore::RngStreams;

        let mut f = test_util::CtxFixture::new();
        f.relative = vec![0.0; 7]; // acceptance probability ~0 everywhere
        let mut rng = RngStreams::new(5).stream("walk");
        let s = prr::probabilistic_walk(3, &f.ctx(0, 0), &mut rng);
        assert!(s < 7, "cap-exhausted walk still answers");
        assert_eq!(s, 4, "fallback is the next eligible server after the walk pointer");

        // Same cap exhaustion with some servers alarmed: the fallback must
        // land on an eligible one.
        f.available[4] = false;
        let s = prr::probabilistic_walk(3, &f.ctx(0, 0), &mut rng);
        assert!(s < 7 && s != 4, "fallback skips the alarmed server, got {s}");
    }
}
