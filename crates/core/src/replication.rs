//! Replicated runs and confidence intervals.
//!
//! The paper reports: "Confidence intervals were estimated, and the 95%
//! confidence interval was observed to be within 4% of the mean." This
//! module provides the machinery to make that statement about any metric:
//! run `n` independent replications (derived seeds), collect a metric per
//! replication, and summarize with a Student-t interval.

use geodns_simcore::stats::{t_critical_95, ConfidenceInterval, Tally};
use geodns_simcore::RngStreams;
use serde::{Deserialize, Serialize};

use crate::{run_all, SimConfig, SimReport};

/// The outcome of a replicated experiment for one scalar metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicationSummary {
    /// The algorithm's paper-style name.
    pub algorithm: String,
    /// Number of replications.
    pub replications: usize,
    /// Per-replication metric values.
    pub values: Vec<f64>,
    /// Mean of the metric across replications.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub half_width_95: f64,
}

impl ReplicationSummary {
    /// Relative precision `half_width / mean` — the paper's "within 4% of
    /// the mean" figure of merit. Infinite when the mean is zero.
    #[must_use]
    pub fn relative_precision(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width_95 / self.mean.abs()
        }
    }

    /// The interval as a [`ConfidenceInterval`].
    #[must_use]
    pub fn interval(&self) -> ConfidenceInterval {
        ConfidenceInterval { mean: self.mean, half_width: self.half_width_95 }
    }
}

/// Runs `n` independent replications of `config` (seeds derived from the
/// config's master seed) and summarizes `metric` over them.
///
/// # Errors
///
/// Returns the first configuration error, or a message if `n < 2` (no
/// interval can be formed).
///
/// # Examples
///
/// ```
/// use geodns_core::{run_replications, Algorithm, SimConfig};
/// use geodns_server::HeterogeneityLevel;
///
/// let mut cfg = SimConfig::quick(Algorithm::rr(), HeterogeneityLevel::H20);
/// cfg.duration_s = 150.0;
/// cfg.warmup_s = 30.0;
/// let summary = run_replications(&cfg, 3, |r| r.mean_util()).unwrap();
/// assert_eq!(summary.replications, 3);
/// assert!(summary.mean > 0.0);
/// ```
pub fn run_replications(
    config: &SimConfig,
    n: usize,
    metric: impl Fn(&SimReport) -> f64,
) -> Result<ReplicationSummary, String> {
    if n < 2 {
        return Err("need at least 2 replications for a confidence interval".into());
    }
    let base = RngStreams::new(config.seed);
    let configs: Vec<SimConfig> = (0..n)
        .map(|r| {
            let mut cfg = config.clone();
            cfg.seed = base.replicate(r as u64).master_seed();
            cfg
        })
        .collect();
    let reports = run_all(&configs)?;

    let values: Vec<f64> = reports.iter().map(&metric).collect();
    let mut tally = Tally::new();
    for &v in &values {
        tally.record(v);
    }
    let t = t_critical_95((n - 1) as u64);
    let half_width = t * tally.std_dev() / (n as f64).sqrt();

    Ok(ReplicationSummary {
        algorithm: reports[0].algorithm.clone(),
        replications: n,
        values,
        mean: tally.mean(),
        half_width_95: half_width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use geodns_server::HeterogeneityLevel;

    fn cfg() -> SimConfig {
        let mut cfg = SimConfig::paper_default(Algorithm::prr2_ttl(2), HeterogeneityLevel::H35);
        cfg.duration_s = 400.0;
        cfg.warmup_s = 100.0;
        cfg.seed = 123;
        cfg
    }

    #[test]
    fn replications_use_distinct_seeds() {
        let s = run_replications(&cfg(), 4, |r| r.mean_util()).unwrap();
        assert_eq!(s.replications, 4);
        assert_eq!(s.values.len(), 4);
        // Different sample paths: not all values identical.
        assert!(s.values.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn summary_statistics_are_consistent() {
        let s = run_replications(&cfg(), 5, |r| r.mean_util()).unwrap();
        let mean = s.values.iter().sum::<f64>() / 5.0;
        assert!((s.mean - mean).abs() < 1e-12);
        assert!(s.half_width_95 >= 0.0);
        assert!(s.interval().contains(s.mean));
    }

    #[test]
    fn mean_util_precision_is_paper_grade() {
        // The paper claims ≤4% relative precision on 5-hour runs; even our
        // short replications should land near that for mean utilization.
        let s = run_replications(&cfg(), 5, |r| r.mean_util()).unwrap();
        assert!(s.relative_precision() < 0.10, "precision {}", s.relative_precision());
    }

    #[test]
    fn summary_is_deterministic() {
        let a = run_replications(&cfg(), 3, |r| r.p98()).unwrap();
        let b = run_replications(&cfg(), 3, |r| r.p98()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_single_replication() {
        assert!(run_replications(&cfg(), 1, |r| r.p98()).is_err());
    }
}
