//! The simulation world: clients, servers, name servers, DNS, glued to the
//! event engine.

use geodns_nameserver::{MinTtlBehavior, NsCache, NsLookup};
use geodns_server::{AlarmMonitor, CapacityPlan, FailureProcess, Hit, Signal, WebServer};
use geodns_simcore::dist::{Distribution, Uniform};
use geodns_simcore::stats::{Cdf, Tally};
use geodns_simcore::{split_mix_64, Engine, RngStreams, SimTime, StreamRng};
use geodns_workload::{LatencyModel, Workload};
use rand::Rng;

use crate::clients::ClientColumns;
use crate::obs::{MuxProbe, Probe, QueueEvent};
use crate::report::LatencySummary;
use crate::service::ServiceSampler;
use crate::{
    ClientCacheModel, DnsScheduler, FailoverModel, HiddenLoadEstimator, SimConfig, SimReport,
    Timeline,
};

/// The event vocabulary of the model.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// A client begins a new session (address resolution + first page).
    SessionStart { client: u32 },
    /// A client issues its next page burst.
    IssuePage { client: u32 },
    /// The hit in service at a server completes. `epoch` names the server
    /// incarnation the completion was scheduled under: a crash bumps the
    /// server's epoch, so completions scheduled before it are recognized
    /// as stale and dropped (the hit was drained by the crash).
    Departure { server: u32, epoch: u32 },
    /// The periodic utilization check on every server (paper: every 8 s).
    UtilSample,
    /// The DNS collects per-domain counters from the servers.
    Collect,
    /// An alarm/normal signal reaches the DNS after the network delay.
    SignalArrive { server: u32, signal: Signal },
    /// End of the warm-up transient: statistics start.
    WarmupEnd,
    /// End of the measured span: the run stops.
    Horizon,
    /// A server crashes (fault injection only).
    ServerCrash { server: u32 },
    /// A crashed server completes repair (fault injection only).
    ServerRecover { server: u32 },
    /// A client re-resolves and retries a failed page after its backoff
    /// ([`FailoverModel::RetryAfterBackoff`] only).
    RetryPage { client: u32 },
}

impl Ev {
    /// The event's static name, for the dispatch probe point.
    fn kind(self) -> &'static str {
        match self {
            Ev::SessionStart { .. } => "SessionStart",
            Ev::IssuePage { .. } => "IssuePage",
            Ev::Departure { .. } => "Departure",
            Ev::UtilSample => "UtilSample",
            Ev::Collect => "Collect",
            Ev::SignalArrive { .. } => "SignalArrive",
            Ev::WarmupEnd => "WarmupEnd",
            Ev::Horizon => "Horizon",
            Ev::ServerCrash { .. } => "ServerCrash",
            Ev::ServerRecover { .. } => "ServerRecover",
            Ev::RetryPage { .. } => "RetryPage",
        }
    }
}

/// Domain-separation constants XORed into the master seed to derive the
/// response CDFs' reservoir seeds (ASCII `"page"` / `"perc"`).
const PAGE_CDF: u64 = 0x7061_6765;
const PERC_CDF: u64 = 0x7065_7263;

/// The scalar knobs the world consults while running, copied out of the
/// [`SimConfig`] so construction can borrow the config instead of cloning
/// its workload tables.
#[derive(Debug, Clone, Copy)]
struct RunParams {
    seed: u64,
    algorithm: crate::Algorithm,
    client_cache: ClientCacheModel,
    failover: FailoverModel,
    util_interval_s: f64,
    feedback_delay_s: f64,
    duration_s: f64,
    warmup_s: f64,
}

/// One fully wired simulation run.
///
/// Build it from a validated [`SimConfig`] and call [`run`](World::run);
/// most users go through [`run_simulation`](crate::run_simulation).
pub struct World {
    params: RunParams,
    workload: Workload,
    plan: CapacityPlan,
    engine: Engine<Ev>,
    servers: Vec<WebServer>,
    alarms: Vec<AlarmMonitor>,
    ns: NsCache,
    dns: DnsScheduler,
    // Dense struct-of-arrays session state — see `clients.rs`. At 1M
    // clients the layout, not the event queue, is the scaling wall.
    clients: ClientColumns,
    rng_think: StreamRng,
    rng_pages: StreamRng,
    rng_hits: StreamRng,
    rng_service: StreamRng,
    service_dists: Vec<ServiceSampler>,
    // --- reusable scratch buffers: the steady-state event loop must not
    // allocate, so the per-decision backlog snapshot and the estimator's
    // collection counts live on the world (see `tests/alloc_free.rs`) ---
    scratch_backlogs: Vec<f64>,
    scratch_counts: Vec<u64>,
    scratch_dropped: Vec<Hit>,
    // --- shard protocol (`shard.rs`): the other shards' summed backlog
    // view from the last epoch barrier (empty in a single-world run, so
    // `fill_backlogs` stays a plain copy), and the outbox of signals this
    // shard raised since the last barrier (collected only when
    // `collect_signals` is set, so the classic path never allocates) ---
    remote_backlogs: Vec<f64>,
    collect_signals: bool,
    signal_outbox: Vec<(u32, Signal)>,
    // --- observability: recorders attached per `SimConfig::obs`. The
    // default (no recorders) makes every hook a pair of `None` checks and
    // keeps the run byte-identical — recorders observe, never perturb. ---
    probe: MuxProbe,
    // --- statistics (collected only after warm-up) ---
    measuring: bool,
    measured_start: SimTime,
    timeline: Option<Timeline>,
    max_util_samples: Vec<f64>,
    per_server_util: Vec<Tally>,
    page_response: Tally,
    // Exact retained-sample CDF: the response stream is bursty and highly
    // autocorrelated, which biases constant-memory quantile estimators
    // (P²'s marker heights lag the stream by whole congestion episodes),
    // so the report's p95 comes from the exact order statistic.
    page_responses: Cdf,
    page_response_hot: Tally,
    page_response_normal: Tally,
    // --- geographic latency (`latency` is `None` unless enabled; the
    // dedicated "latency" RNG stream is drawn exactly once, at
    // construction, and only when enabled — a disabled run stays
    // bit-identical to one predating the proximity extension) ---
    latency: Option<LatencyModel>,
    perceived: Tally,
    perceived_cdf: Cdf,
    perceived_window: Tally,
    rtt_assigned: Tally,
    client_cache_hits: u64,
    sessions: u64,
    dns_queries_measured: u64,
    hits_completed_measured: u64,
    hits_total: u64,
    hits_direct: u64,
    alarms_measured: u64,
    // --- fault injection (`failures` is `None` unless enabled; the RNG
    // stream exists either way but is never drawn from when disabled, so a
    // disabled run stays bit-identical to one without this extension) ---
    rng_failure: StreamRng,
    failures: Option<Vec<FailureProcess>>,
    down_since: Vec<Option<SimTime>>,
    downtime_measured: Vec<f64>,
    recovery_pending: Vec<Option<SimTime>>,
    rebalance: Tally,
    hits_failed_measured: u64,
    rebinds_measured: u64,
    hits_issued_total: u64,
    hits_served_total: u64,
    hits_failed_total: u64,
}

impl World {
    /// Wires up the model.
    ///
    /// # Errors
    ///
    /// Returns the first configuration problem found.
    pub fn new(cfg: &SimConfig) -> Result<Self, String> {
        cfg.validate()?;
        let workload = cfg.workload.build()?;
        let plan = cfg.servers.plan(cfg.total_capacity)?;
        let streams = RngStreams::new(cfg.seed);

        let n_servers = plan.num_servers();
        let n_domains = workload.num_domains();

        let servers: Vec<WebServer> = (0..n_servers)
            .map(|i| WebServer::new(i, plan.absolute(i), n_domains, SimTime::ZERO))
            .collect::<Result<_, _>>()?;
        let service_dists: Vec<ServiceSampler> =
            (0..n_servers).map(|i| cfg.service.sampler(plan.absolute(i))).collect();
        let alarms: Vec<AlarmMonitor> = (0..n_servers)
            .map(|_| AlarmMonitor::new(cfg.alarm_threshold, cfg.alarm_hysteresis))
            .collect::<Result<_, _>>()?;

        let ns = if cfg.ns_noncoop_fraction >= 1.0 {
            NsCache::new(n_domains, cfg.ns_behavior)
        } else {
            // Draw which domains sit behind a non-cooperative NS from a
            // dedicated stream so the mix is seed-stable.
            let mut rng = streams.stream("ns-coop");
            let behaviors = (0..n_domains)
                .map(|_| {
                    if rng.gen::<f64>() < cfg.ns_noncoop_fraction {
                        cfg.ns_behavior
                    } else {
                        MinTtlBehavior::Cooperative
                    }
                })
                .collect();
            NsCache::with_behaviors(behaviors)
        };

        let estimator = HiddenLoadEstimator::new(cfg.estimator, workload.nominal_rates());
        let dns = DnsScheduler::new(
            cfg.algorithm,
            &plan,
            estimator,
            cfg.gamma(),
            cfg.ttl_const_s,
            cfg.normalize_ttl,
            streams.stream("dns-policy"),
        );

        // Hot/normal split of domains by the γ rule on nominal rates, for
        // the per-class response metrics.
        let total_rate: f64 = workload.nominal_rates().iter().sum();
        let gamma = cfg.gamma();
        let hot_domain: Vec<bool> =
            workload.nominal_rates().iter().map(|r| r / total_rate > gamma).collect();

        // Realize the geography once, from its own named stream. The
        // closure runs only when enabled, so latency-free configurations
        // never touch the stream and stay byte-identical.
        let latency = cfg.latency.enabled.then(|| {
            let mut rng = streams.stream("latency");
            LatencyModel::generate(&cfg.latency, n_domains, n_servers, &mut rng)
        });
        let mut dns = dns;
        if let Some(model) = &latency {
            // Prime the scheduler's RTT tables from the geography,
            // GeoIP-style: a real geo-DNS knows approximate client-to-site
            // distances a priori and refines them online. DNS decisions
            // are far too rare (one per domain per TTL window) for a cold
            // estimator to ever map 20 domains × 7 servers from completion
            // samples alone. RNG-free, and a no-op for proximity-blind
            // policies.
            for domain in 0..n_domains {
                for server in 0..n_servers {
                    dns.observe_rtt(domain, server, model.rtt_s(domain, server));
                }
            }
        }

        let n_clients = workload.num_clients();
        let clients = ClientColumns::new(
            (0..n_clients).map(|c| workload.domain_of_client(c).index() as u32),
            &hot_domain,
        );

        Ok(World {
            engine: Engine::with_capacity_and_kind(n_clients * 2 + 64, cfg.queue),
            rng_think: streams.stream("think"),
            rng_pages: streams.stream("pages"),
            rng_hits: streams.stream("hits"),
            rng_service: streams.stream("service"),
            service_dists,
            measuring: false,
            measured_start: SimTime::ZERO,
            timeline: cfg.record_timeline.then(Timeline::new),
            max_util_samples: Vec::new(),
            per_server_util: vec![Tally::new(); n_servers],
            page_response: Tally::new(),
            // Response CDFs honor `cdf_sample_cap` (0 = retain everything,
            // the classic exact behavior). Each gets its own reservoir
            // seed derived from the master seed so capping never touches
            // the model's named RNG streams.
            page_responses: Cdf::with_cap(cfg.cdf_sample_cap, split_mix_64(cfg.seed ^ PAGE_CDF)),
            page_response_hot: Tally::new(),
            page_response_normal: Tally::new(),
            latency,
            perceived: Tally::new(),
            perceived_cdf: Cdf::with_cap(cfg.cdf_sample_cap, split_mix_64(cfg.seed ^ PERC_CDF)),
            perceived_window: Tally::new(),
            rtt_assigned: Tally::new(),
            client_cache_hits: 0,
            sessions: 0,
            dns_queries_measured: 0,
            hits_completed_measured: 0,
            hits_total: 0,
            hits_direct: 0,
            alarms_measured: 0,
            rng_failure: streams.stream("failures"),
            failures: if cfg.failures.enabled {
                Some(
                    (0..n_servers)
                        .map(|_| FailureProcess::new(cfg.failures.spec))
                        .collect::<Result<_, _>>()?,
                )
            } else {
                None
            },
            down_since: vec![None; n_servers],
            downtime_measured: vec![0.0; n_servers],
            recovery_pending: vec![None; n_servers],
            rebalance: Tally::new(),
            hits_failed_measured: 0,
            rebinds_measured: 0,
            hits_issued_total: 0,
            hits_served_total: 0,
            hits_failed_total: 0,
            scratch_backlogs: Vec::with_capacity(n_servers),
            scratch_counts: Vec::with_capacity(n_domains),
            scratch_dropped: Vec::new(),
            remote_backlogs: Vec::new(),
            collect_signals: false,
            signal_outbox: Vec::new(),
            probe: MuxProbe::from_config(&cfg.obs)?,
            params: RunParams {
                seed: cfg.seed,
                algorithm: cfg.algorithm,
                client_cache: cfg.client_cache,
                failover: cfg.failures.failover,
                util_interval_s: cfg.util_interval_s,
                feedback_delay_s: cfg.feedback_delay_s,
                duration_s: cfg.duration_s,
                warmup_s: cfg.warmup_s,
            },
            workload,
            plan,
            servers,
            alarms,
            ns,
            dns,
            clients,
        })
    }

    /// Runs the simulation to its horizon and produces the report.
    pub fn run(self) -> SimReport {
        self.run_metered().0
    }

    /// Like [`run`](World::run), but also returns execution metrics
    /// (events processed, per-client state bytes) for the scale bench.
    pub fn run_metered(mut self) -> (SimReport, RunMetrics) {
        self.schedule_initial_events();
        while let Some((now, ev)) = self.engine.step() {
            self.dispatch(now, ev);
        }
        let metrics = self.metrics();
        (self.finalize(), metrics)
    }

    /// Handles one event. The single dispatch point shared by the classic
    /// run-to-completion loop and the sharded epoch loop.
    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        self.probe.on_event(now, ev.kind(), self.engine.pending());
        match ev {
            Ev::SessionStart { client } => self.on_session_start(client, now),
            Ev::IssuePage { client } => self.on_issue_page(client, now),
            Ev::Departure { server, epoch } => self.on_departure(server, epoch, now),
            Ev::UtilSample => self.on_util_sample(now),
            Ev::Collect => self.on_collect(now),
            Ev::SignalArrive { server, signal } => self.on_signal(server, signal, now),
            Ev::WarmupEnd => self.on_warmup_end(now),
            Ev::Horizon => {
                self.engine.clear_pending();
            }
            Ev::ServerCrash { server } => self.on_server_crash(server, now),
            Ev::ServerRecover { server } => self.on_server_recover(server, now),
            Ev::RetryPage { client } => self.on_retry_page(client, now),
        }
    }

    /// Execution counters of the run so far.
    fn metrics(&self) -> RunMetrics {
        RunMetrics {
            events: self.engine.events_processed(),
            clients: self.clients.len() as u64,
            client_state_bytes: self.clients.bytes() as u64,
        }
    }

    /// Number of simulated clients.
    #[must_use]
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Heap bytes retained for per-client session state — the dense
    /// struct-of-arrays columns. The scale bench divides this by
    /// [`num_clients`](World::num_clients) for its bytes-per-client gate.
    #[must_use]
    pub fn client_state_bytes(&self) -> usize {
        self.clients.bytes()
    }

    fn schedule_initial_events(&mut self) {
        // Stagger session starts across one think period to avoid a
        // synchronized burst at t = 0.
        let think_mean = self.workload.session().think_mean_s;
        let stagger = Uniform::new(0.0, think_mean.max(1e-9) * 2.0).expect("valid stagger window");
        let mut rng_start = RngStreams::new(self.params.seed).stream("start");
        for c in 0..self.clients.len() {
            let delay = stagger.sample(&mut rng_start);
            self.engine.schedule_in(delay, Ev::SessionStart { client: c as u32 });
        }
        self.engine.schedule_in(self.params.util_interval_s, Ev::UtilSample);
        if let Some(interval) = self.dns.estimator().collect_interval() {
            self.engine.schedule_in(interval, Ev::Collect);
        }
        self.engine.schedule_in(self.params.warmup_s, Ev::WarmupEnd);
        self.engine.schedule_in(self.params.warmup_s + self.params.duration_s, Ev::Horizon);
        if let Some(fps) = &mut self.failures {
            for (s, fp) in fps.iter_mut().enumerate() {
                let up = fp.sample_uptime(&mut self.rng_failure);
                self.engine.schedule_in(up, Ev::ServerCrash { server: s as u32 });
            }
        }
    }

    /// Refreshes the reusable backlog snapshot from the current server
    /// states. Reuses `scratch_backlogs` so the per-decision path performs
    /// no allocation once the buffer reached `n_servers` capacity.
    fn fill_backlogs(&mut self) {
        self.scratch_backlogs.clear();
        self.scratch_backlogs.extend(self.servers.iter().map(WebServer::normalized_backlog));
        // In a sharded run, add the other shards' view from the last epoch
        // barrier so the scheduler judges whole-site queues. Empty (and
        // skipped — keeping the classic path byte-identical) otherwise.
        if !self.remote_backlogs.is_empty() {
            for (own, remote) in self.scratch_backlogs.iter_mut().zip(&self.remote_backlogs) {
                *own += remote;
            }
        }
    }

    /// Resolves the client's domain through the full path (client cache →
    /// domain NS cache → DNS), records the mapping into the client state,
    /// and counts failure-driven rebinds.
    fn resolve_client(&mut self, client: u32, now: SimTime) {
        let domain = self.clients.domain(client);
        let old_server = self.clients.server(client);

        let client_hit = self.clients.cached_lookup(client, now);
        if client_hit.is_some() && self.measuring {
            self.client_cache_hits += 1;
        }
        let (server, direct) = match client_hit {
            Some(server) => (server, false),
            None => {
                let outcome = self.ns.lookup_with_outcome(domain, now);
                self.probe.on_ns_lookup(now, domain, outcome);
                let (server, ns_expiry, direct) = match outcome {
                    NsLookup::Hit { server, expiry } => (server, expiry, false),
                    NsLookup::MissCold | NsLookup::MissExpired => {
                        self.fill_backlogs();
                        let (server, ttl) = self.dns.resolve_probed(
                            domain,
                            now,
                            &self.scratch_backlogs,
                            &mut self.probe,
                        );
                        let effective = self.ns.insert(domain, server, ttl, now);
                        if self.measuring {
                            self.dns_queries_measured += 1;
                        }
                        (server, now + effective, true)
                    }
                };
                if !matches!(self.params.client_cache, ClientCacheModel::Off) {
                    let expiry = self
                        .params
                        .client_cache
                        .expiry(now.as_secs(), ns_expiry.as_secs())
                        .map(SimTime::from_secs);
                    match expiry {
                        Some(e) => self.clients.set_cached(client, server as u32, e),
                        None => self.clients.clear_cached(client),
                    }
                }
                (server, direct)
            }
        };
        if self.measuring
            && server != old_server
            && self.failures.as_ref().is_some_and(|f| !f[old_server].alive())
        {
            // The resolution moved this client off a dead server — a
            // failure-driven rebind, whichever cache layer supplied it.
            self.rebinds_measured += 1;
        }
        self.clients.set_server(client, server as u32);
        self.clients.set_direct(client, direct);
    }

    fn on_session_start(&mut self, client: u32, now: SimTime) {
        self.resolve_client(client, now);
        let pages = self.workload.session().sample_pages(&mut self.rng_pages);
        self.clients.set_pages_left(client, pages);
        if self.measuring {
            self.sessions += 1;
        }
        self.on_issue_page(client, now);
    }

    fn on_issue_page(&mut self, client: u32, now: SimTime) {
        self.clients.dec_pages_left(client);
        self.clients.set_page_issued_at(client, now);
        let (server, domain, direct) =
            (self.clients.server(client), self.clients.domain(client), self.clients.direct(client));
        let hits = self.workload.session().sample_hits(&mut self.rng_hits);
        self.hits_issued_total += hits;
        if self.measuring {
            self.hits_total += hits;
            if direct {
                self.hits_direct += hits;
            }
        }
        if self.failures.as_ref().is_some_and(|f| !f[server].alive()) {
            // The mapped server is down: the whole page fails and the
            // client's failover model decides what happens next.
            self.hits_failed_total += hits;
            if self.measuring {
                self.hits_failed_measured += hits;
            }
            self.handle_failed_page(client, now);
            return;
        }
        if let Some(recovered_at) = self.recovery_pending[server].take() {
            if self.measuring {
                self.rebalance.record(now.since(recovered_at));
            }
        }
        let epoch = self.servers[server].epoch();
        for i in 0..hits {
            let hit = Hit { client: client as usize, domain, last_of_page: i + 1 == hits };
            if self.servers[server].arrive(hit, now) {
                let svc = self.service_dists[server].sample(&mut self.rng_service);
                self.engine.schedule_in(svc, Ev::Departure { server: server as u32, epoch });
            }
        }
        self.probe.on_queue_change(
            now,
            server,
            self.servers[server].queue_len(),
            QueueEvent::Arrive { hits },
        );
    }

    fn on_departure(&mut self, server: u32, epoch: u32, now: SimTime) {
        let s = server as usize;
        if epoch != self.servers[s].epoch() {
            // The server crashed after this completion was scheduled; the
            // hit was drained and already accounted as failed.
            return;
        }
        let (hit, more) = self.servers[s].depart(now);
        if more {
            let svc = self.service_dists[s].sample(&mut self.rng_service);
            self.engine.schedule_in(svc, Ev::Departure { server, epoch });
        }
        self.probe.on_queue_change(now, s, self.servers[s].queue_len(), QueueEvent::Depart);
        self.hits_served_total += 1;
        if self.measuring {
            self.hits_completed_measured += 1;
        }
        if hit.last_of_page {
            let client = hit.client as u32;
            let response = now.since(self.clients.page_issued_at(client));
            // Client-perceived latency = queueing response + the base
            // network round-trip of the (domain, server) pair. The policy
            // is fed the network leg alone — the proximity signal — and
            // unconditionally (warm-up included, like the alarm monitors):
            // for proximity-blind policies the call is a no-op, and it
            // draws no randomness, so old runs stay byte-identical.
            let rtt = self.latency.as_ref().map_or(0.0, |m| m.rtt_s(hit.domain, s));
            let perceived = response + rtt;
            self.dns.observe_rtt(hit.domain, s, rtt);
            if self.measuring {
                self.page_response.record(response);
                self.page_responses.record(response);
                if self.clients.hot(client) {
                    self.page_response_hot.record(response);
                } else {
                    self.page_response_normal.record(response);
                }
                if self.latency.is_some() {
                    self.perceived.record(perceived);
                    self.perceived_cdf.record(perceived);
                    self.perceived_window.record(perceived);
                    self.rtt_assigned.record(rtt);
                }
            }
            let multiplier = self.workload.client_rate_multiplier_at(hit.client, now.as_secs());
            let think =
                self.workload.session().sample_think_scaled(&mut self.rng_think, multiplier);
            let next = if self.clients.pages_left(client) > 0 {
                Ev::IssuePage { client }
            } else {
                Ev::SessionStart { client }
            };
            self.engine.schedule_in(think, next);
        }
    }

    fn on_util_sample(&mut self, now: SimTime) {
        let mut max_util: f64 = 0.0;
        let mut row = self
            .timeline
            .as_ref()
            .filter(|_| self.measuring)
            .map(|_| Vec::with_capacity(self.servers.len()));
        for s in 0..self.servers.len() {
            let u = self.servers[s].sample_utilization(now);
            self.probe.on_util_sample(now, s, u);
            max_util = max_util.max(u);
            if self.measuring {
                self.per_server_util[s].record(u);
            }
            if let Some(r) = row.as_mut() {
                r.push(u);
            }
            if let Some(signal) = self.alarms[s].observe(u) {
                self.engine.schedule_in(
                    self.params.feedback_delay_s,
                    Ev::SignalArrive { server: s as u32, signal },
                );
            }
        }
        if self.measuring {
            self.max_util_samples.push(max_util);
            if let (Some(timeline), Some(row)) = (self.timeline.as_mut(), row) {
                timeline.push(now.since(self.measured_start), row);
                if self.latency.is_some() {
                    let mean = if self.perceived_window.count() > 0 {
                        self.perceived_window.mean()
                    } else {
                        0.0
                    };
                    timeline.push_perceived(mean);
                    self.perceived_window = Tally::new();
                }
            }
        }
        self.engine.schedule_in(self.params.util_interval_s, Ev::UtilSample);
    }

    fn on_collect(&mut self, now: SimTime) {
        let Some(interval) = self.dns.estimator().collect_interval() else {
            return;
        };
        let n_domains = self.workload.num_domains();
        self.scratch_counts.clear();
        self.scratch_counts.resize(n_domains, 0);
        for server in &mut self.servers {
            for (total, c) in self.scratch_counts.iter_mut().zip(server.take_domain_counts()) {
                *total += c;
            }
        }
        self.probe.on_collect(now, &self.scratch_counts);
        self.dns.ingest(&self.scratch_counts, interval);
        self.engine.schedule_in(interval, Ev::Collect);
    }

    fn on_signal(&mut self, server: u32, signal: Signal, now: SimTime) {
        if self.measuring && signal == Signal::Alarm {
            self.alarms_measured += 1;
        }
        self.probe.on_signal(now, server as usize, signal);
        self.dns.signal(server as usize, signal);
        if self.collect_signals {
            self.signal_outbox.push((server, signal));
        }
    }

    fn on_server_crash(&mut self, server: u32, now: SimTime) {
        let s = server as usize;
        let repair = {
            let fps = self.failures.as_mut().expect("crash event without fault injection");
            fps[s].crash();
            fps[s].sample_downtime(&mut self.rng_failure)
        };
        self.engine.schedule_in(repair, Ev::ServerRecover { server });
        // The liveness signal rides the same delayed channel as alarms.
        self.engine.schedule_in(
            self.params.feedback_delay_s,
            Ev::SignalArrive { server, signal: Signal::Down },
        );
        self.down_since[s] = Some(now);
        self.recovery_pending[s] = None;
        self.probe.on_liveness(now, s, false);
        if self.measuring {
            let t = now.since(self.measured_start);
            if let Some(timeline) = self.timeline.as_mut() {
                timeline.push_failure_event(t, server, false);
            }
        }
        // Everything queued at the server is lost. A page whose closing
        // hit was still queued never completes, so its client fails over.
        // The drain reuses a scratch buffer so the crash path, like the
        // rest of the steady-state loop, settles to zero allocations.
        self.scratch_dropped.clear();
        self.servers[s].crash_drain_into(now, &mut self.scratch_dropped);
        let dropped = self.scratch_dropped.len();
        self.probe.on_queue_change(now, s, 0, QueueEvent::Crash { dropped });
        self.hits_failed_total += dropped as u64;
        if self.measuring {
            self.hits_failed_measured += dropped as u64;
        }
        for i in 0..dropped {
            let hit = self.scratch_dropped[i];
            if hit.last_of_page {
                self.handle_failed_page(hit.client as u32, now);
            }
        }
    }

    fn on_server_recover(&mut self, server: u32, now: SimTime) {
        let s = server as usize;
        let next_up = {
            let fps = self.failures.as_mut().expect("recovery event without fault injection");
            fps[s].recover();
            fps[s].sample_uptime(&mut self.rng_failure)
        };
        self.engine.schedule_in(next_up, Ev::ServerCrash { server });
        self.engine.schedule_in(
            self.params.feedback_delay_s,
            Ev::SignalArrive { server, signal: Signal::Up },
        );
        if let Some(down_at) = self.down_since[s].take() {
            if self.measuring {
                let from =
                    if down_at < self.measured_start { self.measured_start } else { down_at };
                self.downtime_measured[s] += now.since(from);
            }
        }
        self.recovery_pending[s] = Some(now);
        self.probe.on_liveness(now, s, true);
        if self.measuring {
            let t = now.since(self.measured_start);
            if let Some(timeline) = self.timeline.as_mut() {
                timeline.push_failure_event(t, server, true);
            }
        }
    }

    /// A client's page failed (issued at a dead server, or dropped from a
    /// crashing server's queue). The failover model decides what happens.
    fn handle_failed_page(&mut self, client: u32, now: SimTime) {
        // Tell the policy the page never completed so an RTT-aware scheme
        // backs off the dead server instead of waiting out a full RTO.
        // No-op (and RNG-free) for the classic policies.
        self.dns.observe_timeout(self.clients.domain(client), self.clients.server(client));
        match self.params.failover {
            FailoverModel::PinUntilTtl => {
                // Paper-faithful: the page is abandoned, the binding stays
                // until its TTL runs out, and the client moves on after a
                // normal think period.
                let multiplier =
                    self.workload.client_rate_multiplier_at(client as usize, now.as_secs());
                let think =
                    self.workload.session().sample_think_scaled(&mut self.rng_think, multiplier);
                let next = if self.clients.pages_left(client) > 0 {
                    Ev::IssuePage { client }
                } else {
                    Ev::SessionStart { client }
                };
                self.engine.schedule_in(think, next);
            }
            FailoverModel::RetryAfterBackoff { backoff_s } => {
                // The client notices the failure, drops its own binding,
                // and retries the same page after the backoff with a fresh
                // resolution (the NS cache may still pin it to the dead
                // server until the TTL expires).
                self.clients.inc_pages_left(client);
                self.clients.clear_cached(client);
                self.engine.schedule_in(backoff_s, Ev::RetryPage { client });
            }
        }
    }

    fn on_retry_page(&mut self, client: u32, now: SimTime) {
        self.resolve_client(client, now);
        self.on_issue_page(client, now);
    }

    fn on_warmup_end(&mut self, now: SimTime) {
        self.measuring = true;
        self.measured_start = now;
        self.ns.reset_stats();
        for server in &mut self.servers {
            server.reset_lifetime(now);
        }
        // A server that crashed during warm-up and is still down gets no
        // `Down` event inside the measured span, so without this a trace
        // consumer reconstructing liveness from `failure_events` would
        // believe it was up until its (possibly never-recorded) repair —
        // disagreeing with `per_server_availability`. Emit the initial
        // liveness state at t = 0 of the measured span.
        if let Some(timeline) = self.timeline.as_mut() {
            for (s, down) in self.down_since.iter().enumerate() {
                if down.is_some() {
                    timeline.push_failure_event(0.0, s as u32, false);
                }
            }
        }
        self.probe.on_measurement_start(now, &self.down_since);
    }

    fn finalize(mut self) -> SimReport {
        self.max_util_samples.sort_by(|a, b| a.total_cmp(b));
        let span = self.params.duration_s;
        // Close out servers still down at the horizon.
        let horizon = self.engine.now();
        let mut downtime = self.downtime_measured.clone();
        if self.measuring {
            for (s, down_at) in self.down_since.iter().enumerate() {
                if let Some(t) = down_at {
                    let from = if *t < self.measured_start { self.measured_start } else { *t };
                    downtime[s] += horizon.since(from);
                }
            }
        }
        let per_server_availability: Vec<f64> =
            downtime.iter().map(|d| (1.0 - d / span).clamp(0.0, 1.0)).collect();
        let hits_in_flight: u64 = self.servers.iter().map(|s| s.queue_len() as u64).sum();
        let obs = self.probe.finish();
        let latency = self.latency.as_ref().map(|_| LatencySummary {
            pages: self.perceived_cdf.count() as u64,
            perceived_mean_s: self.perceived.mean(),
            perceived_p50_s: self.perceived_cdf.quantile(0.50).unwrap_or(0.0),
            perceived_p95_s: self.perceived_cdf.quantile(0.95).unwrap_or(0.0),
            perceived_p99_s: self.perceived_cdf.quantile(0.99).unwrap_or(0.0),
            rtt_mean_s: self.rtt_assigned.mean(),
        });
        SimReport {
            algorithm: self.params.algorithm.name(),
            seed: self.params.seed,
            heterogeneity_pct: self.plan.max_difference() * 100.0,
            measured_span_s: span,
            max_util_samples: self.max_util_samples,
            per_server_mean_util: self.per_server_util.iter().map(Tally::mean).collect(),
            page_response_mean_s: self.page_response.mean(),
            page_response_p95_s: self.page_responses.quantile(0.95).unwrap_or(0.0),
            sessions: self.sessions,
            dns_queries: self.dns_queries_measured,
            address_request_rate: self.dns_queries_measured as f64 / span,
            dns_control_fraction: if self.hits_total > 0 {
                self.hits_direct as f64 / self.hits_total as f64
            } else {
                0.0
            },
            hits_completed: self.hits_completed_measured,
            alarms: self.alarms_measured,
            ns_miss_fraction: self.ns.stats().miss_fraction(),
            page_response_hot_mean_s: self.page_response_hot.mean(),
            page_response_normal_mean_s: self.page_response_normal.mean(),
            client_cache_hits: self.client_cache_hits,
            hits_failed: self.hits_failed_measured,
            rebinds: self.rebinds_measured,
            per_server_availability,
            time_to_rebalance_mean_s: self.rebalance.mean(),
            hits_issued_total: self.hits_issued_total,
            hits_served_total: self.hits_served_total,
            hits_failed_total: self.hits_failed_total,
            hits_in_flight,
            timeline: self.timeline,
            obs,
            latency,
        }
    }
}

// --- the shard protocol: the crate-private hooks `shard.rs` drives to run
// this world as one shard of a domain-decomposed site (see `ShardSpec`) ---
impl World {
    /// Schedules the initial event population without running. The epoch
    /// loop then advances the world barrier by barrier.
    pub(crate) fn start(&mut self) {
        self.schedule_initial_events();
    }

    /// Processes every pending event with timestamp strictly before
    /// `until`, then stops — events at or past the barrier instant run in
    /// the next epoch, after the cross-shard exchange.
    pub(crate) fn run_epoch(&mut self, until: SimTime) {
        while self.engine.next_event_time().is_some_and(|t| t < until) {
            let (now, ev) = self.engine.step().expect("a pending event was just peeked");
            self.dispatch(now, ev);
        }
    }

    /// Whether the event queue is empty (the horizon has passed).
    pub(crate) fn drained(&self) -> bool {
        self.engine.next_event_time().is_none()
    }

    /// Turns on the signal outbox so alarm/normal/liveness signals this
    /// shard's DNS receives are also staged for broadcast at the barrier.
    pub(crate) fn enable_signal_collection(&mut self) {
        self.collect_signals = true;
    }

    /// Writes this shard's per-server normalized backlogs into `out`.
    pub(crate) fn export_backlogs(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.servers.iter().map(WebServer::normalized_backlog));
    }

    /// Installs the other shards' summed backlog view for the next epoch.
    pub(crate) fn set_remote_backlogs(&mut self, remote: &[f64]) {
        self.remote_backlogs.clear();
        self.remote_backlogs.extend_from_slice(remote);
    }

    /// Moves the staged signals out (in the order they fired).
    pub(crate) fn drain_signal_outbox(&mut self, out: &mut Vec<(u32, Signal)>) {
        out.append(&mut self.signal_outbox);
    }

    /// Delivers a signal another shard raised to this shard's DNS.
    pub(crate) fn apply_remote_signal(&mut self, server: u32, signal: Signal) {
        self.dns.signal(server as usize, signal);
    }

    /// Tears the finished shard down into its raw statistics, for the
    /// cross-shard merge (`shard.rs`). The single-world path goes through
    /// [`finalize`](World::finalize) instead.
    pub(crate) fn harvest(self) -> crate::shard::ShardHarvest {
        let metrics = self.metrics();
        let hits_in_flight: u64 = self.servers.iter().map(|s| s.queue_len() as u64).sum();
        crate::shard::ShardHarvest {
            max_util_samples: self.max_util_samples,
            per_server_util: self.per_server_util,
            page_response: self.page_response,
            page_responses: self.page_responses,
            page_response_hot: self.page_response_hot,
            page_response_normal: self.page_response_normal,
            sessions: self.sessions,
            dns_queries: self.dns_queries_measured,
            client_cache_hits: self.client_cache_hits,
            hits_completed: self.hits_completed_measured,
            hits_total: self.hits_total,
            hits_direct: self.hits_direct,
            alarms: self.alarms_measured,
            ns_stats: self.ns.stats(),
            hits_issued_total: self.hits_issued_total,
            hits_served_total: self.hits_served_total,
            hits_failed_total: self.hits_failed_total,
            hits_in_flight,
            metrics,
        }
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("algorithm", &self.params.algorithm.name())
            .field("servers", &self.servers.len())
            .field("clients", &self.clients.len())
            .field("now", &self.engine.now())
            .finish()
    }
}

/// Execution metrics of one run, for throughput and memory accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMetrics {
    /// Events the engine processed over the whole run (warm-up included).
    pub events: u64,
    /// Number of simulated clients.
    pub clients: u64,
    /// Heap bytes retained for per-client session state.
    pub client_state_bytes: u64,
}

impl RunMetrics {
    /// Per-client session-state footprint in bytes.
    #[must_use]
    pub fn bytes_per_client(&self) -> f64 {
        if self.clients == 0 {
            0.0
        } else {
            self.client_state_bytes as f64 / self.clients as f64
        }
    }

    /// Sums counters across shards (client counts and bytes add; so do
    /// events).
    #[must_use]
    pub fn merged(metrics: &[RunMetrics]) -> RunMetrics {
        let mut total = RunMetrics { events: 0, clients: 0, client_state_bytes: 0 };
        for m in metrics {
            total.events += m.events;
            total.clients += m.clients;
            total.client_state_bytes += m.client_state_bytes;
        }
        total
    }
}

/// Runs one simulation described by `config` and returns its report.
///
/// # Errors
///
/// Returns the first configuration problem found.
///
/// # Examples
///
/// ```
/// use geodns_core::{run_simulation, Algorithm, SimConfig};
/// use geodns_server::HeterogeneityLevel;
///
/// let mut cfg = SimConfig::quick(Algorithm::rr(), HeterogeneityLevel::H20);
/// cfg.duration_s = 120.0;
/// cfg.warmup_s = 30.0;
/// let report = run_simulation(&cfg).unwrap();
/// assert!(report.hits_completed > 0);
/// assert!(report.mean_util() > 0.0);
/// ```
pub fn run_simulation(config: &SimConfig) -> Result<SimReport, String> {
    if config.shard.shards > 1 {
        return Ok(crate::shard::run_sharded(config)?.0);
    }
    Ok(World::new(config)?.run())
}

/// Runs one simulation and also returns its execution metrics (events
/// processed, per-client state bytes) — the scale bench's entry point.
///
/// # Errors
///
/// Returns the first configuration problem found.
pub fn run_simulation_metered(config: &SimConfig) -> Result<(SimReport, RunMetrics), String> {
    if config.shard.shards > 1 {
        return crate::shard::run_sharded(config);
    }
    Ok(World::new(config)?.run_metered())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use geodns_server::HeterogeneityLevel;

    fn short(algorithm: Algorithm, level: HeterogeneityLevel, seed: u64) -> SimReport {
        let mut cfg = SimConfig::paper_default(algorithm, level);
        cfg.duration_s = 600.0;
        cfg.warmup_s = 120.0;
        cfg.seed = seed;
        run_simulation(&cfg).unwrap()
    }

    #[test]
    fn utilizations_are_physical() {
        let r = short(Algorithm::rr(), HeterogeneityLevel::H20, 1);
        assert!(!r.max_util_samples.is_empty());
        for &u in &r.max_util_samples {
            assert!((0.0..=1.0).contains(&u), "utilization {u}");
        }
        for &u in &r.per_server_mean_util {
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn offered_load_is_about_two_thirds() {
        let r = short(Algorithm::prr_ttl_k(), HeterogeneityLevel::H20, 2);
        // Closed-loop think-time model: mean utilization ≈ 2/3 by design,
        // a bit lower because response time adds to the cycle.
        let mean = r.mean_util();
        assert!((0.45..0.80).contains(&mean), "mean utilization {mean}");
    }

    #[test]
    fn dns_controls_a_small_fraction() {
        let r = short(Algorithm::rr(), HeterogeneityLevel::H20, 3);
        assert!(r.dns_control_fraction < 0.25, "DNS controls {}", r.dns_control_fraction);
        assert!(r.dns_control_fraction > 0.0);
        assert!(r.ns_miss_fraction > 0.0);
    }

    #[test]
    fn sessions_and_hits_flow() {
        let r = short(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H35, 4);
        assert!(r.sessions > 0);
        assert!(r.hits_completed > 1000);
        assert!(r.page_response_mean_s > 0.0);
        assert!(r.page_response_p95_s >= r.page_response_mean_s * 0.5);
    }

    #[test]
    fn same_seed_same_report() {
        let a = short(Algorithm::prr2_ttl(2), HeterogeneityLevel::H50, 7);
        let b = short(Algorithm::prr2_ttl(2), HeterogeneityLevel::H50, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = short(Algorithm::rr(), HeterogeneityLevel::H20, 1);
        let b = short(Algorithm::rr(), HeterogeneityLevel::H20, 2);
        assert_ne!(a.max_util_samples, b.max_util_samples);
    }

    #[test]
    fn measured_estimator_runs() {
        let mut cfg = SimConfig::paper_default(Algorithm::prr_ttl_k(), HeterogeneityLevel::H20);
        cfg.duration_s = 600.0;
        cfg.warmup_s = 120.0;
        cfg.estimator = crate::EstimatorKind::measured_default();
        let r = run_simulation(&cfg).unwrap();
        assert!(r.hits_completed > 0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = SimConfig::paper_default(Algorithm::rr(), HeterogeneityLevel::H0);
        cfg.duration_s = -1.0;
        assert!(run_simulation(&cfg).is_err());
    }

    #[test]
    fn latency_model_populates_the_perceived_summary() {
        let mut cfg = SimConfig::paper_default(Algorithm::rtt_band(400), HeterogeneityLevel::H20);
        cfg.duration_s = 600.0;
        cfg.warmup_s = 120.0;
        cfg.seed = 5;
        cfg.latency.enabled = true;
        let r = run_simulation(&cfg).unwrap();
        let lat = r.latency.expect("enabled model must yield a summary");
        assert!(lat.pages > 0);
        assert!(lat.perceived_p50_s > 0.0);
        assert!(lat.perceived_p50_s <= lat.perceived_p95_s);
        assert!(lat.perceived_p95_s <= lat.perceived_p99_s);
        // Perceived latency includes the network leg on top of queueing.
        assert!(lat.perceived_mean_s > r.page_response_mean_s);
        assert!(lat.rtt_mean_s > 0.0);
    }

    #[test]
    fn disabled_latency_leaves_the_report_unchanged() {
        let r = short(Algorithm::rr(), HeterogeneityLevel::H20, 1);
        assert!(r.latency.is_none());
        let json = serde_json::to_string(&r).unwrap();
        assert!(!json.contains("\"latency\""), "disabled model must not grow a key");
    }

    #[test]
    fn timeline_carries_perceived_latency_when_enabled() {
        let mut cfg = SimConfig::paper_default(Algorithm::rtt_band(400), HeterogeneityLevel::H20);
        cfg.duration_s = 600.0;
        cfg.warmup_s = 120.0;
        cfg.seed = 9;
        cfg.latency.enabled = true;
        cfg.record_timeline = true;
        let r = run_simulation(&cfg).unwrap();
        let timeline = r.timeline.expect("timeline requested");
        assert_eq!(timeline.perceived_latency_s.len(), timeline.len());
        assert!(timeline.perceived_latency_s.iter().any(|&m| m > 0.0));
    }
}
