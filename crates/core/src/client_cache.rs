//! Client-side address caching models.
//!
//! The paper notes that "caching of the address mapping is typically done
//! at Name Servers (NS) and also at the clients". A client that honours
//! the remaining TTL behaves identically to an NS hit in this model (one
//! shared NS per domain), but real browsers historically did something
//! worse: they **pinned** the resolved address for a fixed duration
//! regardless of TTL (classic Internet Explorer pinned for 30 minutes as a
//! DNS-rebinding defence). Pinning silently extends every mapping's
//! lifetime and is a classic way adaptive TTL gets defeated in the field —
//! the `sweep_client_pin` bench quantifies exactly that.

use serde::{Deserialize, Serialize};

/// How a client treats resolved addresses.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ClientCacheModel {
    /// No client cache: every session consults the (domain-level) NS.
    /// This is the paper's effective model and the default.
    #[default]
    Off,
    /// The client caches the mapping until the *same instant* the NS entry
    /// expires (honours remaining TTL). Behaviourally equivalent to
    /// [`Off`](ClientCacheModel::Off) here — kept to make that equivalence
    /// testable.
    HonorTtl,
    /// Browser-style pinning: the client reuses the resolved server for a
    /// fixed duration regardless of the TTL the DNS chose.
    Pin {
        /// The pin duration, seconds.
        pin_s: f64,
    },
}

impl ClientCacheModel {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message for a non-positive pin duration.
    pub fn validate(&self) -> Result<(), String> {
        if let ClientCacheModel::Pin { pin_s } = self {
            if !(pin_s.is_finite() && *pin_s > 0.0) {
                return Err(format!("client pin duration must be > 0, got {pin_s}"));
            }
        }
        Ok(())
    }

    /// The client-cache expiry for a mapping resolved at `now_s` whose NS
    /// entry expires at `ns_expiry_s`, or `None` when the client does not
    /// cache.
    #[must_use]
    pub fn expiry(&self, now_s: f64, ns_expiry_s: f64) -> Option<f64> {
        match *self {
            ClientCacheModel::Off => None,
            ClientCacheModel::HonorTtl => Some(ns_expiry_s),
            ClientCacheModel::Pin { pin_s } => Some(now_s + pin_s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_never_caches() {
        assert_eq!(ClientCacheModel::Off.expiry(10.0, 250.0), None);
    }

    #[test]
    fn honor_ttl_tracks_ns_expiry() {
        assert_eq!(ClientCacheModel::HonorTtl.expiry(10.0, 250.0), Some(250.0));
    }

    #[test]
    fn pin_ignores_ttl() {
        let pin = ClientCacheModel::Pin { pin_s: 1800.0 };
        assert_eq!(pin.expiry(10.0, 250.0), Some(1810.0));
        assert_eq!(pin.expiry(10.0, 20.0), Some(1810.0), "pin outlives a short TTL");
    }

    #[test]
    fn validation() {
        assert!(ClientCacheModel::Off.validate().is_ok());
        assert!(ClientCacheModel::HonorTtl.validate().is_ok());
        assert!(ClientCacheModel::Pin { pin_s: 60.0 }.validate().is_ok());
        assert!(ClientCacheModel::Pin { pin_s: 0.0 }.validate().is_err());
        assert!(ClientCacheModel::Pin { pin_s: f64::NAN }.validate().is_err());
    }
}
