//! The DNS scheduler: policy + adaptive TTL + alarms + estimation.

use geodns_server::{CapacityPlan, Signal};
use geodns_simcore::{SimTime, StreamRng};

use crate::classifier::{DomainClasses, TierSpec};
use crate::obs::{DnsDecision, NoopProbe, Probe};
use crate::policies::{SchedCtx, SelectionPolicy};
use crate::ttl::{TtlKind, TtlScheme};
use crate::{Algorithm, HiddenLoadEstimator};

/// The cluster-side DNS of the distributed Web site: answers address
/// requests with a `(server, TTL)` pair, honours alarm signals, and keeps
/// its domain classification and TTL tables in sync with the hidden-load
/// estimator.
///
/// # Examples
///
/// ```
/// use geodns_core::{Algorithm, DnsScheduler, EstimatorKind, HiddenLoadEstimator};
/// use geodns_server::{CapacityPlan, HeterogeneityLevel};
/// use geodns_simcore::{RngStreams, SimTime};
///
/// let plan = CapacityPlan::from_level(HeterogeneityLevel::H20, 500.0);
/// let est = HiddenLoadEstimator::new(EstimatorKind::Oracle, &[30.0, 10.0, 5.0, 5.0]);
/// let rng = RngStreams::new(7).stream("dns");
/// let mut dns = DnsScheduler::new(
///     Algorithm::drr2_ttl_s_k(), &plan, est, 0.25, 240.0, true, rng,
/// );
/// let backlogs = vec![0.0; 7];
/// let (server, ttl) = dns.resolve(0, SimTime::ZERO, &backlogs);
/// assert!(server < 7);
/// assert!(ttl > 0.0);
/// ```
pub struct DnsScheduler {
    algorithm: Algorithm,
    policy: Box<dyn SelectionPolicy>,
    estimator: HiddenLoadEstimator,
    sel_classes: DomainClasses,
    ttl_classes: DomainClasses,
    ttl_scheme: TtlScheme,
    relative_caps: Vec<f64>,
    capacities: Vec<f64>,
    available: Vec<bool>,
    alive: Vec<bool>,
    candidates: Vec<bool>,
    gamma: f64,
    ttl_const: f64,
    normalize: bool,
    queries: u64,
    rng: StreamRng,
}

impl DnsScheduler {
    /// Creates the scheduler.
    ///
    /// * `gamma` — the two-tier class threshold γ (the paper's `1/K`).
    /// * `ttl_const` — the constant-TTL baseline (240 s) adaptive schemes
    ///   are rate-matched to.
    /// * `normalize` — whether to rate-normalize adaptive TTLs.
    #[must_use]
    pub fn new(
        algorithm: Algorithm,
        plan: &CapacityPlan,
        estimator: HiddenLoadEstimator,
        gamma: f64,
        ttl_const: f64,
        normalize: bool,
        rng: StreamRng,
    ) -> Self {
        let n = plan.num_servers();
        let sel_tiers = if algorithm.policy.is_two_tier() {
            TierSpec::Classes(2)
        } else {
            TierSpec::Classes(1)
        };
        let sel_classes = DomainClasses::build(estimator.weights(), sel_tiers, gamma);
        let policy =
            algorithm.policy.build(n, sel_classes.num_classes(), estimator.weights().len());

        let ttl_tiers = match algorithm.ttl {
            TtlKind::Adaptive { tiers, .. } => tiers,
            TtlKind::Constant => TierSpec::Classes(1),
        };
        let ttl_classes = DomainClasses::build(estimator.weights(), ttl_tiers, gamma);
        let ttl_scheme = TtlScheme::build(
            algorithm.ttl,
            &ttl_classes,
            estimator.weights(),
            plan.relatives(),
            ttl_const,
            normalize,
        );

        DnsScheduler {
            algorithm,
            policy,
            estimator,
            sel_classes,
            ttl_classes,
            ttl_scheme,
            relative_caps: plan.relatives().to_vec(),
            capacities: plan.absolutes().to_vec(),
            available: vec![true; n],
            alive: vec![true; n],
            candidates: vec![true; n],
            gamma,
            ttl_const,
            normalize,
            queries: 0,
            rng,
        }
    }

    /// The algorithm this scheduler runs.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Answers one address request from `domain`: the chosen server and the
    /// TTL attached to the mapping.
    pub fn resolve(&mut self, domain: usize, now: SimTime, backlogs: &[f64]) -> (usize, f64) {
        self.resolve_probed(domain, now, backlogs, &mut NoopProbe)
    }

    /// Like [`resolve`](Self::resolve), but reports the full decision —
    /// candidate set, exclusions, TTL, policy state — to `probe` after the
    /// selection. The probe observes only: scheduling is bit-identical
    /// whichever probe is attached (the no-op probe makes this method
    /// exactly `resolve`, allocation-free included).
    pub fn resolve_probed(
        &mut self,
        domain: usize,
        now: SimTime,
        backlogs: &[f64],
        probe: &mut dyn Probe,
    ) -> (usize, f64) {
        self.queries += 1;
        let class = self.sel_classes.class_of(domain);
        let ctx = SchedCtx {
            domain,
            class,
            weights: self.estimator.weights(),
            relative_caps: &self.relative_caps,
            capacities: &self.capacities,
            available: &self.candidates,
            backlogs,
            now,
        };
        let rel_weight = ctx.relative_weight();
        let server = self.policy.select(&ctx, &mut self.rng);
        let ttl = self.ttl_scheme.ttl(self.ttl_classes.class_of(domain), server);
        self.policy.assigned(server, rel_weight, ttl, now);
        probe.on_dns_decision(&DnsDecision {
            now,
            seq: self.queries,
            domain,
            class,
            chosen: server,
            ttl_s: ttl,
            candidates: &self.candidates,
            alive: &self.alive,
            unalarmed: &self.available,
            backlogs,
            policy: self.policy.as_ref(),
        });
        (server, ttl)
    }

    /// Processes an asynchronous load signal from a server.
    ///
    /// Alarm state and liveness are tracked separately: a `Normal` signal
    /// clears an alarm but cannot resurrect a crashed server, and an `Up`
    /// signal ends an outage without touching the alarm state.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn signal(&mut self, server: usize, signal: Signal) {
        match signal {
            Signal::Alarm => self.available[server] = false,
            Signal::Normal => self.available[server] = true,
            Signal::Down => self.alive[server] = false,
            Signal::Up => self.alive[server] = true,
        }
        self.rebuild_candidates();
    }

    /// Recomputes the candidacy mask the policies see. Preference order:
    /// servers that are both live and un-alarmed; failing that, any live
    /// server (the alarm path's all-excluded fallback, restricted to
    /// machines that can actually answer); failing *that* — a total outage
    /// — every server, because the DNS must return something.
    fn rebuild_candidates(&mut self) {
        let both = |i: usize| self.available[i] && self.alive[i];
        if (0..self.candidates.len()).any(both) {
            for i in 0..self.candidates.len() {
                self.candidates[i] = both(i);
            }
        } else if self.alive.iter().any(|&l| l) {
            self.candidates.copy_from_slice(&self.alive);
        } else {
            self.candidates.fill(true);
        }
    }

    /// Feeds one estimator collection (per-domain hit counts over
    /// `interval_s` seconds) and rebuilds the classification and TTL tables
    /// from the new estimates. No-op rebuild for the oracle estimator.
    ///
    /// Returns whether the collection was accepted; a degenerate interval
    /// is rejected by [`HiddenLoadEstimator::ingest`] and leaves the
    /// classification and TTL tables untouched.
    pub fn ingest(&mut self, counts: &[u64], interval_s: f64) -> bool {
        if !self.estimator.ingest(counts, interval_s) {
            return false;
        }
        self.rebuild();
        true
    }

    fn rebuild(&mut self) {
        let sel_tiers = if self.algorithm.policy.is_two_tier() {
            TierSpec::Classes(2)
        } else {
            TierSpec::Classes(1)
        };
        self.sel_classes = DomainClasses::build(self.estimator.weights(), sel_tiers, self.gamma);
        self.policy.on_classes_rebuilt(self.sel_classes.num_classes());

        let ttl_tiers = match self.algorithm.ttl {
            TtlKind::Adaptive { tiers, .. } => tiers,
            TtlKind::Constant => TierSpec::Classes(1),
        };
        self.ttl_classes = DomainClasses::build(self.estimator.weights(), ttl_tiers, self.gamma);
        self.ttl_scheme = TtlScheme::build(
            self.algorithm.ttl,
            &self.ttl_classes,
            self.estimator.weights(),
            &self.relative_caps,
            self.ttl_const,
            self.normalize,
        );
    }

    /// Feeds one measured client-perceived round-trip (seconds) for a
    /// completed page from `domain` served by `server` back to the
    /// selection policy at per-domain granularity; proximity-blind
    /// policies ignore the sample.
    pub fn observe_rtt(&mut self, domain: usize, server: usize, rtt_s: f64) {
        self.policy.observe_rtt(domain, server, rtt_s);
    }

    /// Feeds one timeout (failed page) for a request from `domain` aimed
    /// at `server` back to the selection policy — proximity-aware
    /// policies turn it into a multiplicative SRTT penalty.
    pub fn observe_timeout(&mut self, domain: usize, server: usize) {
        self.policy.observe_timeout(domain, server);
    }

    /// Number of address requests answered.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Number of client domains the scheduler was configured with (the
    /// length [`ingest`](Self::ingest) expects and the valid range of the
    /// `domain` argument to [`resolve`](Self::resolve)).
    #[must_use]
    pub fn num_domains(&self) -> usize {
        self.estimator.weights().len()
    }

    /// The current TTL table.
    #[must_use]
    pub fn ttl_scheme(&self) -> &TtlScheme {
        &self.ttl_scheme
    }

    /// The current availability mask (false = alarmed).
    #[must_use]
    pub fn availability(&self) -> &[bool] {
        &self.available
    }

    /// The current liveness mask (false = crashed, as far as the DNS has
    /// heard over the delayed signal channel).
    #[must_use]
    pub fn liveness(&self) -> &[bool] {
        &self.alive
    }

    /// The estimator (for inspection).
    #[must_use]
    pub fn estimator(&self) -> &HiddenLoadEstimator {
        &self.estimator
    }

    /// The current selection classification (two-tier for `*2` policies).
    #[must_use]
    pub fn selection_classes(&self) -> &DomainClasses {
        &self.sel_classes
    }

    /// The current TTL classification.
    #[must_use]
    pub fn ttl_classes(&self) -> &DomainClasses {
        &self.ttl_classes
    }
}

/// The scheduler is `Send` by construction ([`SelectionPolicy`] and
/// [`Probe`] carry `Send` supertraits, and every other field is plain
/// data), which is what lets a multi-threaded front end move one
/// scheduler shard into each worker thread. This assertion turns an
/// accidental `!Send` field — an `Rc`, a raw pointer — into a compile
/// error here instead of a confusing one at the daemon's `thread::spawn`.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<DnsScheduler>();
};

impl std::fmt::Debug for DnsScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DnsScheduler")
            .field("algorithm", &self.algorithm.name())
            .field("queries", &self.queries)
            .field("available", &self.available)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EstimatorKind;
    use geodns_server::HeterogeneityLevel;
    use geodns_simcore::RngStreams;

    fn scheduler(algorithm: Algorithm) -> DnsScheduler {
        let plan = CapacityPlan::from_level(HeterogeneityLevel::H20, 500.0);
        let weights: Vec<f64> = (0..20).map(|i| 100.0 / (i + 1) as f64).collect();
        let est = HiddenLoadEstimator::new(EstimatorKind::Oracle, &weights);
        let rng = RngStreams::new(1).stream("sched");
        DnsScheduler::new(algorithm, &plan, est, 0.05, 240.0, true, rng)
    }

    #[test]
    fn resolve_returns_valid_answers() {
        let mut dns = scheduler(Algorithm::drr2_ttl_s_k());
        let backlogs = vec![0.0; 7];
        for d in 0..20 {
            let (s, ttl) = dns.resolve(d, SimTime::ZERO, &backlogs);
            assert!(s < 7);
            assert!(ttl > 0.0 && ttl.is_finite());
        }
        assert_eq!(dns.queries(), 20);
    }

    #[test]
    fn adaptive_ttl_orders_by_domain_weight() {
        let mut dns = scheduler(Algorithm::prr_ttl_k());
        let backlogs = vec![0.0; 7];
        // TTL/K is server-independent: compare hot vs cold domains.
        let (_, hot_ttl) = dns.resolve(0, SimTime::ZERO, &backlogs);
        let (_, cold_ttl) = dns.resolve(19, SimTime::ZERO, &backlogs);
        assert!(hot_ttl < cold_ttl, "hot {hot_ttl} vs cold {cold_ttl}");
        // Pure Zipf: domain 19 is 20× lighter → 20× the TTL.
        assert!((cold_ttl / hot_ttl - 20.0).abs() < 1e-6);
    }

    #[test]
    fn server_scaled_ttl_varies_with_server() {
        let mut dns = scheduler(Algorithm::drr_ttl_s_k());
        let backlogs = vec![0.0; 7];
        // DRR visits servers in round-robin order: collect TTLs over a full
        // cycle for the same domain.
        let ttls: Vec<f64> = (0..7).map(|_| dns.resolve(0, SimTime::ZERO, &backlogs).1).collect();
        let min = ttls.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ttls.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max / min - 1.25).abs() < 1e-9, "ρ·α spread is 1/0.8 at H20");
    }

    #[test]
    fn alarm_excludes_server() {
        let mut dns = scheduler(Algorithm::rr());
        let backlogs = vec![0.0; 7];
        dns.signal(2, Signal::Alarm);
        for _ in 0..20 {
            let (s, _) = dns.resolve(0, SimTime::ZERO, &backlogs);
            assert_ne!(s, 2);
        }
        dns.signal(2, Signal::Normal);
        let mut seen2 = false;
        for _ in 0..8 {
            if dns.resolve(0, SimTime::ZERO, &backlogs).0 == 2 {
                seen2 = true;
            }
        }
        assert!(seen2, "recovered server rejoins the rotation");
    }

    #[test]
    fn down_server_excluded_until_up() {
        let mut dns = scheduler(Algorithm::drr2_ttl_s_k());
        let backlogs = vec![0.0; 7];
        dns.signal(3, Signal::Down);
        for _ in 0..50 {
            assert_ne!(dns.resolve(0, SimTime::ZERO, &backlogs).0, 3);
        }
        dns.signal(3, Signal::Up);
        let mut seen3 = false;
        for _ in 0..50 {
            if dns.resolve(0, SimTime::ZERO, &backlogs).0 == 3 {
                seen3 = true;
            }
        }
        assert!(seen3, "repaired server rejoins the rotation");
    }

    #[test]
    fn alarm_clearing_does_not_resurrect_a_dead_server() {
        let mut dns = scheduler(Algorithm::rr());
        let backlogs = vec![0.0; 7];
        dns.signal(2, Signal::Alarm);
        dns.signal(2, Signal::Down);
        // The alarm clears while the machine is still down.
        dns.signal(2, Signal::Normal);
        for _ in 0..50 {
            assert_ne!(dns.resolve(0, SimTime::ZERO, &backlogs).0, 2);
        }
        dns.signal(2, Signal::Up);
        assert!((0..8).any(|_| dns.resolve(0, SimTime::ZERO, &backlogs).0 == 2));
    }

    #[test]
    fn repair_does_not_clear_an_alarm() {
        let mut dns = scheduler(Algorithm::rr());
        let backlogs = vec![0.0; 7];
        dns.signal(5, Signal::Down);
        dns.signal(5, Signal::Alarm);
        dns.signal(5, Signal::Up);
        for _ in 0..50 {
            assert_ne!(dns.resolve(0, SimTime::ZERO, &backlogs).0, 5, "still alarmed");
        }
    }

    #[test]
    fn alarmed_live_servers_beat_dead_ones_in_the_fallback() {
        let mut dns = scheduler(Algorithm::rr());
        let backlogs = vec![0.0; 7];
        // Servers 0..5 dead, 5 and 6 alarmed: only live machines may answer.
        for s in 0..5 {
            dns.signal(s, Signal::Down);
        }
        dns.signal(5, Signal::Alarm);
        dns.signal(6, Signal::Alarm);
        for _ in 0..50 {
            let (s, _) = dns.resolve(0, SimTime::ZERO, &backlogs);
            assert!(s == 5 || s == 6, "fallback stays within live servers, got {s}");
        }
    }

    #[test]
    fn total_outage_still_answers_something() {
        let mut dns = scheduler(Algorithm::prr_ttl_k());
        let backlogs = vec![0.0; 7];
        for s in 0..7 {
            dns.signal(s, Signal::Down);
        }
        for _ in 0..20 {
            let (s, ttl) = dns.resolve(0, SimTime::ZERO, &backlogs);
            assert!(s < 7);
            assert!(ttl > 0.0);
        }
    }

    #[test]
    fn constant_ttl_is_240_everywhere() {
        let mut dns = scheduler(Algorithm::rr());
        let backlogs = vec![0.0; 7];
        for d in 0..20 {
            let (_, ttl) = dns.resolve(d, SimTime::ZERO, &backlogs);
            assert_eq!(ttl, 240.0);
        }
    }

    #[test]
    fn ingest_rebuilds_from_measurements() {
        let plan = CapacityPlan::from_level(HeterogeneityLevel::H0, 500.0);
        let est = HiddenLoadEstimator::new(
            EstimatorKind::Measured { collect_interval_s: 10.0, ema_alpha: 1.0 },
            &[1.0, 1.0],
        );
        let rng = RngStreams::new(2).stream("sched");
        let mut dns = DnsScheduler::new(Algorithm::prr_ttl_k(), &plan, est, 0.5, 240.0, true, rng);
        let backlogs = vec![0.0; 7];
        let (_, before0) = dns.resolve(0, SimTime::ZERO, &backlogs);
        assert_eq!(dns.resolve(1, SimTime::ZERO, &backlogs).1, before0, "cold start is symmetric");
        // Feed a 9:1 skew and expect the TTLs to diverge accordingly.
        dns.ingest(&[900, 100], 10.0);
        let (_, hot) = dns.resolve(0, SimTime::ZERO, &backlogs);
        let (_, cold) = dns.resolve(1, SimTime::ZERO, &backlogs);
        assert!((cold / hot - 9.0).abs() < 1e-9, "ratio {}", cold / hot);
    }

    #[test]
    fn degenerate_interval_leaves_ttl_tables_alone() {
        let plan = CapacityPlan::from_level(HeterogeneityLevel::H0, 500.0);
        let est = HiddenLoadEstimator::new(
            EstimatorKind::Measured { collect_interval_s: 10.0, ema_alpha: 1.0 },
            &[1.0, 1.0],
        );
        let rng = RngStreams::new(3).stream("sched");
        let mut dns = DnsScheduler::new(Algorithm::prr_ttl_k(), &plan, est, 0.5, 240.0, true, rng);
        let backlogs = vec![0.0; 7];
        assert!(dns.ingest(&[900, 100], 10.0), "sane collection accepted");
        let hot = dns.resolve(0, SimTime::ZERO, &backlogs).1;
        let cold = dns.resolve(1, SimTime::ZERO, &backlogs).1;
        for bad in [0.0, f64::NAN, f64::INFINITY] {
            assert!(!dns.ingest(&[5, 5], bad), "interval {bad} accepted");
        }
        // The rejected collections changed nothing: same TTLs, all finite.
        assert_eq!(dns.resolve(0, SimTime::ZERO, &backlogs).1, hot);
        assert_eq!(dns.resolve(1, SimTime::ZERO, &backlogs).1, cold);
        assert_eq!(dns.num_domains(), 2);
    }

    #[test]
    fn two_tier_policies_get_two_classes() {
        let dns = scheduler(Algorithm::drr2_ttl_s(2));
        assert_eq!(dns.selection_classes().num_classes(), 2);
        let dns = scheduler(Algorithm::rr());
        assert_eq!(dns.selection_classes().num_classes(), 1);
        // RTT-band keys its estimator table by domain, not domain class:
        // it does not ask for the two-tier classifier.
        let dns = scheduler(Algorithm::rtt_band(400));
        assert_eq!(dns.selection_classes().num_classes(), 1);
    }

    #[test]
    fn rtt_feedback_steers_rtt_band_toward_the_near_server() {
        let mut dns = scheduler(Algorithm::rtt_band(400));
        let backlogs = vec![0.0; 7];
        // Every domain measures server 5 at 20 ms and everyone else at
        // 900 ms — far outside the 400 ms band.
        for d in 0..20 {
            for s in 0..7 {
                for _ in 0..4 {
                    dns.observe_rtt(d, s, if s == 5 { 0.020 } else { 0.900 });
                }
            }
        }
        for d in 0..20 {
            assert_eq!(dns.resolve(d, SimTime::ZERO, &backlogs).0, 5);
        }
        // Three timeouts push the near server out of the band again.
        for d in 0..20 {
            for _ in 0..3 {
                dns.observe_timeout(d, 5);
            }
        }
        for d in 0..20 {
            assert_ne!(dns.resolve(d, SimTime::ZERO, &backlogs).0, 5);
        }
    }
}
