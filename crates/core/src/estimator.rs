//! Hidden-load-weight estimation at the DNS.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// How the DNS obtains the per-domain hidden load weights that drive the
/// adaptive TTL formulas and the two-tier classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// Perfect knowledge of the *nominal* (unperturbed) domain rates. This
    /// is the paper's baseline assumption; combined with a perturbed
    /// workload it realizes the estimation-error experiments of Figures
    /// 6–7 (the DNS keeps believing the stale estimates).
    Oracle,
    /// The practical mechanism of §3.1: servers count incoming hits per
    /// domain, the DNS collects the counters every `collect_interval_s`
    /// seconds and smooths the observed rates with an exponential moving
    /// average (`ema_alpha` is the weight of the newest observation).
    Measured {
        /// Seconds between collections.
        collect_interval_s: f64,
        /// EMA smoothing factor in `(0, 1]`; 1 = no smoothing.
        ema_alpha: f64,
    },
    /// A sliding-window alternative (in the spirit of the authors' later
    /// state-estimator work): the estimate is the plain average of the
    /// last `windows` collections. Reacts in bounded time and forgets
    /// completely, unlike the EMA's infinite tail.
    WindowAverage {
        /// Seconds between collections.
        collect_interval_s: f64,
        /// How many recent collections the average spans (≥ 1).
        windows: usize,
    },
}

impl EstimatorKind {
    /// The default measured estimator: collect every 32 s, EMA α = 0.25.
    #[must_use]
    pub fn measured_default() -> Self {
        EstimatorKind::Measured { collect_interval_s: 32.0, ema_alpha: 0.25 }
    }

    /// The default window estimator: collect every 32 s, average the last
    /// 8 windows (≈4 minutes of history).
    #[must_use]
    pub fn window_default() -> Self {
        EstimatorKind::WindowAverage { collect_interval_s: 32.0, windows: 8 }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message for non-positive intervals, α outside `(0, 1]`,
    /// or a zero-length window.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            EstimatorKind::Oracle => Ok(()),
            EstimatorKind::Measured { collect_interval_s, ema_alpha } => {
                if !(collect_interval_s.is_finite() && *collect_interval_s > 0.0) {
                    return Err(format!("collect interval must be > 0, got {collect_interval_s}"));
                }
                if !(ema_alpha.is_finite() && *ema_alpha > 0.0 && *ema_alpha <= 1.0) {
                    return Err(format!("EMA alpha must be in (0,1], got {ema_alpha}"));
                }
                Ok(())
            }
            EstimatorKind::WindowAverage { collect_interval_s, windows } => {
                if !(collect_interval_s.is_finite() && *collect_interval_s > 0.0) {
                    return Err(format!("collect interval must be > 0, got {collect_interval_s}"));
                }
                if *windows == 0 {
                    return Err("window count must be >= 1".to_string());
                }
                Ok(())
            }
        }
    }
}

/// The runtime estimator state: the DNS's current belief about each
/// domain's hidden load weight (an absolute rate in hits/s; only ratios
/// matter downstream).
///
/// # Examples
///
/// ```
/// use geodns_core::{EstimatorKind, HiddenLoadEstimator};
///
/// let mut e = HiddenLoadEstimator::new(
///     EstimatorKind::Measured { collect_interval_s: 10.0, ema_alpha: 1.0 },
///     &[1.0, 1.0], // cold-start belief
/// );
/// e.ingest(&[300, 100], 10.0); // 30 and 10 hits/s observed
/// assert!((e.weights()[0] - 30.0).abs() < 1e-12);
/// assert!((e.weights()[1] - 10.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HiddenLoadEstimator {
    kind: EstimatorKind,
    weights: Vec<f64>,
    history: VecDeque<Vec<f64>>,
    updates: u64,
}

impl HiddenLoadEstimator {
    /// Creates an estimator. For [`EstimatorKind::Oracle`] the
    /// `initial_weights` (nominal rates) are the permanent truth; for the
    /// adaptive kinds they are only the cold-start belief.
    ///
    /// # Panics
    ///
    /// Panics if `initial_weights` is empty, non-positive everywhere, or
    /// contains a non-finite or negative entry (a NaN cold-start belief
    /// would propagate into every TTL the scheduler computes).
    #[must_use]
    pub fn new(kind: EstimatorKind, initial_weights: &[f64]) -> Self {
        assert!(!initial_weights.is_empty(), "need at least one domain");
        assert!(initial_weights.iter().any(|&w| w > 0.0), "initial weights must not all be zero");
        assert!(
            initial_weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "initial weights must be finite and non-negative, got {initial_weights:?}"
        );
        HiddenLoadEstimator {
            kind,
            weights: initial_weights.to_vec(),
            history: VecDeque::new(),
            updates: 0,
        }
    }

    /// The estimator's configuration.
    #[must_use]
    pub fn kind(&self) -> EstimatorKind {
        self.kind
    }

    /// Current per-domain weight estimates (hits/s).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of completed collections.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Whether the world must periodically call [`ingest`](Self::ingest),
    /// and at which interval.
    #[must_use]
    pub fn collect_interval(&self) -> Option<f64> {
        match self.kind {
            EstimatorKind::Oracle => None,
            EstimatorKind::Measured { collect_interval_s, .. }
            | EstimatorKind::WindowAverage { collect_interval_s, .. } => Some(collect_interval_s),
        }
    }

    /// Feeds one collection: per-domain hit counts observed over
    /// `interval_s` seconds (summed across servers). No-op for the oracle.
    ///
    /// Domains observed at zero keep a small floor so TTL formulas stay
    /// finite.
    ///
    /// Returns whether the collection was accepted. A non-finite or
    /// non-positive `interval_s` is **rejected** (mirroring
    /// [`EstimatorKind::validate`]) and leaves the weights untouched:
    /// dividing by zero/NaN/∞ here would poison every weight — and every
    /// wire TTL downstream — with NaN, and a live collector thread that
    /// measures its own interval must not be able to do that. Count
    /// spikes are safe unrejected: `u64 → f64` over a positive finite
    /// interval is always finite.
    ///
    /// # Panics
    ///
    /// Panics if the count vector length differs from the domain count
    /// (a configuration bug, not an operational condition).
    pub fn ingest(&mut self, counts: &[u64], interval_s: f64) -> bool {
        assert_eq!(counts.len(), self.weights.len(), "domain count mismatch");
        if !(interval_s.is_finite() && interval_s > 0.0) {
            return false;
        }
        let floor = 1e-6;
        match self.kind {
            EstimatorKind::Oracle => {}
            EstimatorKind::Measured { ema_alpha, .. } => {
                self.updates += 1;
                for (w, &c) in self.weights.iter_mut().zip(counts) {
                    let observed = (c as f64 / interval_s).max(floor);
                    *w = (1.0 - ema_alpha) * *w + ema_alpha * observed;
                }
            }
            EstimatorKind::WindowAverage { windows, .. } => {
                self.updates += 1;
                let observed: Vec<f64> =
                    counts.iter().map(|&c| (c as f64 / interval_s).max(floor)).collect();
                self.history.push_back(observed);
                while self.history.len() > windows {
                    self.history.pop_front();
                }
                let n = self.history.len() as f64;
                for (d, w) in self.weights.iter_mut().enumerate() {
                    *w = self.history.iter().map(|obs| obs[d]).sum::<f64>() / n;
                }
            }
        }
        true
    }

    /// Returns the weights normalized to relative shares (sum 1).
    #[must_use]
    pub fn relative_weights(&self) -> Vec<f64> {
        let total: f64 = self.weights.iter().sum();
        self.weights.iter().map(|w| w / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_never_moves() {
        let mut e = HiddenLoadEstimator::new(EstimatorKind::Oracle, &[5.0, 1.0]);
        e.ingest(&[0, 1_000_000], 1.0);
        assert_eq!(e.weights(), &[5.0, 1.0]);
        assert_eq!(e.updates(), 0);
        assert_eq!(e.collect_interval(), None);
    }

    #[test]
    fn measured_converges_with_full_alpha() {
        let mut e = HiddenLoadEstimator::new(
            EstimatorKind::Measured { collect_interval_s: 10.0, ema_alpha: 1.0 },
            &[1.0, 1.0],
        );
        e.ingest(&[200, 50], 10.0);
        assert_eq!(e.weights(), &[20.0, 5.0]);
        assert_eq!(e.updates(), 1);
    }

    #[test]
    fn ema_smooths() {
        let mut e = HiddenLoadEstimator::new(
            EstimatorKind::Measured { collect_interval_s: 1.0, ema_alpha: 0.5 },
            &[10.0],
        );
        e.ingest(&[20], 1.0);
        assert!((e.weights()[0] - 15.0).abs() < 1e-12);
        e.ingest(&[20], 1.0);
        assert!((e.weights()[0] - 17.5).abs() < 1e-12);
    }

    #[test]
    fn window_average_tracks_exactly() {
        let mut e = HiddenLoadEstimator::new(
            EstimatorKind::WindowAverage { collect_interval_s: 1.0, windows: 2 },
            &[0.5],
        );
        e.ingest(&[10], 1.0);
        assert!((e.weights()[0] - 10.0).abs() < 1e-12, "single window = observation");
        e.ingest(&[20], 1.0);
        assert!((e.weights()[0] - 15.0).abs() < 1e-12, "mean of {{10, 20}}");
        e.ingest(&[40], 1.0);
        assert!((e.weights()[0] - 30.0).abs() < 1e-12, "10 fell out of the window");
    }

    #[test]
    fn window_forgets_completely() {
        let mut e = HiddenLoadEstimator::new(
            EstimatorKind::WindowAverage { collect_interval_s: 1.0, windows: 3 },
            &[100.0],
        );
        for _ in 0..3 {
            e.ingest(&[5], 1.0);
        }
        assert!((e.weights()[0] - 5.0).abs() < 1e-12, "cold-start belief fully flushed");
    }

    #[test]
    fn zero_counts_keep_a_floor() {
        for kind in [
            EstimatorKind::Measured { collect_interval_s: 1.0, ema_alpha: 1.0 },
            EstimatorKind::WindowAverage { collect_interval_s: 1.0, windows: 1 },
        ] {
            let mut e = HiddenLoadEstimator::new(kind, &[10.0]);
            e.ingest(&[0], 1.0);
            assert!(e.weights()[0] > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn relative_weights_normalize() {
        let e = HiddenLoadEstimator::new(EstimatorKind::Oracle, &[3.0, 1.0]);
        let r = e.relative_weights();
        assert!((r[0] - 0.75).abs() < 1e-12);
        assert!((r[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn kind_validation() {
        assert!(EstimatorKind::Oracle.validate().is_ok());
        assert!(EstimatorKind::measured_default().validate().is_ok());
        assert!(EstimatorKind::window_default().validate().is_ok());
        assert!(EstimatorKind::Measured { collect_interval_s: 0.0, ema_alpha: 0.5 }
            .validate()
            .is_err());
        assert!(EstimatorKind::Measured { collect_interval_s: 10.0, ema_alpha: 0.0 }
            .validate()
            .is_err());
        assert!(EstimatorKind::Measured { collect_interval_s: 10.0, ema_alpha: 1.5 }
            .validate()
            .is_err());
        assert!(EstimatorKind::WindowAverage { collect_interval_s: 10.0, windows: 0 }
            .validate()
            .is_err());
        assert!(EstimatorKind::WindowAverage { collect_interval_s: -1.0, windows: 4 }
            .validate()
            .is_err());
    }

    #[test]
    #[should_panic(expected = "domain count mismatch")]
    fn mismatched_counts_panic() {
        let mut e = HiddenLoadEstimator::new(EstimatorKind::measured_default(), &[1.0]);
        e.ingest(&[1, 2], 1.0);
    }

    #[test]
    fn degenerate_intervals_are_rejected_not_poisonous() {
        // A zero/negative/NaN/∞ collection interval must be refused with
        // the weights untouched — `c / 0.0` or `c / NaN` would turn every
        // weight into ∞/NaN, and those flow straight into wire TTLs.
        for kind in [
            EstimatorKind::Measured { collect_interval_s: 1.0, ema_alpha: 0.5 },
            EstimatorKind::WindowAverage { collect_interval_s: 1.0, windows: 3 },
        ] {
            let mut e = HiddenLoadEstimator::new(kind, &[8.0, 2.0]);
            for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                assert!(!e.ingest(&[1000, 1], bad), "{kind:?} accepted interval {bad}");
                assert_eq!(e.weights(), &[8.0, 2.0], "{kind:?} weights moved on interval {bad}");
                assert_eq!(e.updates(), 0, "{kind:?} counted a rejected collection");
            }
            // A sane collection afterwards still works.
            assert!(e.ingest(&[100, 100], 10.0));
            assert!(e.weights().iter().all(|w| w.is_finite()), "{kind:?}");
            assert_eq!(e.updates(), 1);
        }
    }

    #[test]
    fn weights_stay_finite_under_count_spikes() {
        // The largest representable count over the shortest plausible
        // interval must still produce finite weights (and finite relative
        // shares) in both adaptive kinds.
        for kind in [
            EstimatorKind::Measured { collect_interval_s: 1.0, ema_alpha: 0.25 },
            EstimatorKind::WindowAverage { collect_interval_s: 1.0, windows: 2 },
        ] {
            let mut e = HiddenLoadEstimator::new(kind, &[1.0, 1.0]);
            assert!(e.ingest(&[u64::MAX, 0], 1e-3));
            assert!(e.ingest(&[0, u64::MAX], 1e-3));
            assert!(e.weights().iter().all(|w| w.is_finite()), "{kind:?}: {:?}", e.weights());
            assert!(e.relative_weights().iter().all(|w| w.is_finite()), "{kind:?}");
        }
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_initial_weights_panic() {
        let _ = HiddenLoadEstimator::new(EstimatorKind::Oracle, &[1.0, f64::NAN]);
    }
}
