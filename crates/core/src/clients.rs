//! Dense struct-of-arrays client-session state.

use geodns_simcore::{DenseBits, SimTime};

/// Per-client session state flattened into dense columns indexed by client
/// id.
///
/// The array-of-structs predecessor held a 48-byte `ClientState` per client
/// (an `Option<(u32, SimTime)>` alone padded to 16). At the paper's 500
/// clients that was irrelevant; at the 1M clients the scale experiments run
/// it is the difference between client state fitting in cache-friendly
/// sequential columns or not. Each field lives in its own `Vec` (booleans in
/// [`DenseBits`], one bit each), the client's cached mapping is encoded
/// without an `Option` — `f64::NEG_INFINITY` expiry means "no mapping", and
/// the `now < expiry` freshness filter behaves identically — and
/// [`bytes`](ClientColumns::bytes) reports the exact per-client footprint
/// for the scale bench's bytes-per-client gate.
///
/// Columns: domain (`u32`), server (`u32`), pages left in session (`u32`),
/// page issue time (`f64`), cached server (`u32`) + cached expiry (`f64`),
/// direct-mapping flag (1 bit), hot-domain flag (1 bit) — 32¼ bytes per
/// client.
#[derive(Debug)]
pub(crate) struct ClientColumns {
    domain: Vec<u32>,
    server: Vec<u32>,
    pages_left: Vec<u32>,
    page_issued_at: Vec<f64>,
    cached_server: Vec<u32>,
    /// Expiry of the client's own cached mapping, seconds;
    /// `f64::NEG_INFINITY` encodes "no cached mapping".
    cached_expiry: Vec<f64>,
    /// Whether the session's mapping came straight from the DNS (an NS
    /// cache miss) rather than from a cache.
    direct: DenseBits,
    /// Whether the client's source domain is "hot" under the γ rule.
    hot: DenseBits,
}

impl ClientColumns {
    /// Builds the columns for one client per entry of `domains`, marking
    /// clients whose domain index is set in `hot_domains`.
    pub(crate) fn new(domains: impl ExactSizeIterator<Item = u32>, hot_domains: &[bool]) -> Self {
        let n = domains.len();
        let mut domain = Vec::with_capacity(n);
        let mut hot = DenseBits::new(n, false);
        for (c, d) in domains.enumerate() {
            domain.push(d);
            if hot_domains[d as usize] {
                hot.set(c, true);
            }
        }
        ClientColumns {
            domain,
            server: vec![0; n],
            pages_left: vec![0; n],
            page_issued_at: vec![0.0; n],
            cached_server: vec![0; n],
            cached_expiry: vec![f64::NEG_INFINITY; n],
            direct: DenseBits::new(n, false),
            hot,
        }
    }

    /// Number of clients.
    pub(crate) fn len(&self) -> usize {
        self.domain.len()
    }

    /// Total heap footprint of the columns in bytes — the numerator of the
    /// bytes-per-client figure `BENCH_scale.json` gates on.
    pub(crate) fn bytes(&self) -> usize {
        self.domain.capacity() * 4
            + self.server.capacity() * 4
            + self.pages_left.capacity() * 4
            + self.page_issued_at.capacity() * 8
            + self.cached_server.capacity() * 4
            + self.cached_expiry.capacity() * 8
            + self.direct.bytes()
            + self.hot.bytes()
    }

    pub(crate) fn domain(&self, c: u32) -> usize {
        self.domain[c as usize] as usize
    }

    pub(crate) fn server(&self, c: u32) -> usize {
        self.server[c as usize] as usize
    }

    pub(crate) fn set_server(&mut self, c: u32, server: u32) {
        self.server[c as usize] = server;
    }

    pub(crate) fn direct(&self, c: u32) -> bool {
        self.direct.get(c as usize)
    }

    pub(crate) fn set_direct(&mut self, c: u32, direct: bool) {
        self.direct.set(c as usize, direct);
    }

    pub(crate) fn hot(&self, c: u32) -> bool {
        self.hot.get(c as usize)
    }

    pub(crate) fn pages_left(&self, c: u32) -> u32 {
        self.pages_left[c as usize]
    }

    pub(crate) fn set_pages_left(&mut self, c: u32, pages: u64) {
        self.pages_left[c as usize] = u32::try_from(pages).expect("session page count exceeds u32");
    }

    /// Decrements the pages-left counter by one.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if no pages are left — a page must never be
    /// issued with none remaining.
    pub(crate) fn dec_pages_left(&mut self, c: u32) {
        debug_assert!(self.pages_left[c as usize] > 0, "page issued with none left");
        self.pages_left[c as usize] -= 1;
    }

    pub(crate) fn inc_pages_left(&mut self, c: u32) {
        self.pages_left[c as usize] += 1;
    }

    pub(crate) fn page_issued_at(&self, c: u32) -> SimTime {
        SimTime::from_secs(self.page_issued_at[c as usize])
    }

    pub(crate) fn set_page_issued_at(&mut self, c: u32, at: SimTime) {
        self.page_issued_at[c as usize] = at.as_secs();
    }

    /// The client's own cached server mapping, if present and still fresh
    /// at `now` — exactly the old `cached.filter(|(_, expiry)| now <
    /// expiry)`: the sentinel `NEG_INFINITY` can never satisfy `now <
    /// expiry`, so an absent mapping never hits.
    pub(crate) fn cached_lookup(&self, c: u32, now: SimTime) -> Option<usize> {
        (now.as_secs() < self.cached_expiry[c as usize])
            .then(|| self.cached_server[c as usize] as usize)
    }

    pub(crate) fn set_cached(&mut self, c: u32, server: u32, expiry: SimTime) {
        self.cached_server[c as usize] = server;
        self.cached_expiry[c as usize] = expiry.as_secs();
    }

    pub(crate) fn clear_cached(&mut self, c: u32) {
        self.cached_expiry[c as usize] = f64::NEG_INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns(n: usize) -> ClientColumns {
        let hot = vec![true, false];
        ClientColumns::new((0..n).map(|c| (c % 2) as u32), &hot)
    }

    #[test]
    fn construction_seeds_domains_and_hotness() {
        let c = columns(10);
        assert_eq!(c.len(), 10);
        for i in 0..10u32 {
            assert_eq!(c.domain(i), (i % 2) as usize);
            assert_eq!(c.hot(i), i % 2 == 0, "domain 0 is hot");
            assert_eq!(c.server(i), 0);
            assert_eq!(c.pages_left(i), 0);
            assert!(!c.direct(i));
            assert_eq!(c.cached_lookup(i, SimTime::ZERO), None);
        }
    }

    #[test]
    fn cached_mapping_round_trip_and_expiry() {
        let mut c = columns(4);
        c.set_cached(2, 5, SimTime::from_secs(10.0));
        assert_eq!(c.cached_lookup(2, SimTime::from_secs(9.9)), Some(5));
        assert_eq!(c.cached_lookup(2, SimTime::from_secs(10.0)), None, "expiry is exclusive");
        assert_eq!(c.cached_lookup(3, SimTime::ZERO), None, "neighbours untouched");
        c.clear_cached(2);
        assert_eq!(c.cached_lookup(2, SimTime::ZERO), None);
    }

    #[test]
    fn page_counters() {
        let mut c = columns(2);
        c.set_pages_left(0, 7);
        c.dec_pages_left(0);
        c.inc_pages_left(0);
        assert_eq!(c.pages_left(0), 7);
        assert_eq!(c.pages_left(1), 0, "per-client isolation");
    }

    #[test]
    fn bytes_per_client_is_dense() {
        let n = 100_000;
        let c = columns(n);
        let per_client = c.bytes() as f64 / n as f64;
        // 4×u32 + 2×f64 + 2 bits = 32.25; Vec headroom stays nil because
        // every column is sized exactly once.
        assert!(per_client <= 33.0, "{per_client} bytes/client");
    }
}
