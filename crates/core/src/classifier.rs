//! Partitioning domains into load classes (the "two-tier" machinery).

use serde::{Deserialize, Serialize};

/// How many classes the domains are partitioned into (the `i` of the
/// paper's `TTL/i` meta-algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TierSpec {
    /// A fixed number of classes. `Classes(1)` degenerates to "no
    /// differentiation"; `Classes(2)` is the paper's hot/normal split.
    Classes(usize),
    /// One class per domain (`i = K`): the fully adaptive `TTL/K` family.
    PerDomain,
}

impl TierSpec {
    /// The number of classes this spec produces for `k` domains.
    #[must_use]
    pub fn num_classes(&self, k: usize) -> usize {
        match *self {
            TierSpec::Classes(n) => n.min(k).max(1),
            TierSpec::PerDomain => k,
        }
    }
}

/// A partition of the `K` domains into load classes ordered from hottest
/// (class 0) to coldest, with each class's average hidden-load weight.
///
/// For two classes this implements the paper's rule: "each domain with a
/// relative hidden load weight greater than γ is included in the hot
/// class", with γ defaulting to `1/K`. For other class counts the domains
/// are split into contiguous rank groups of (near) equal size; for
/// [`TierSpec::PerDomain`] every domain is its own class.
///
/// # Examples
///
/// ```
/// use geodns_core::{DomainClasses, TierSpec};
///
/// // Zipf-ish weights over 4 domains; γ = 1/4 puts only dom0 in the hot class.
/// let weights = [12.0, 4.0, 3.0, 1.0];
/// let c = DomainClasses::build(&weights, TierSpec::Classes(2), 0.25);
/// assert_eq!(c.num_classes(), 2);
/// assert_eq!(c.class_of(0), 0, "hot");
/// assert_eq!(c.class_of(3), 1, "normal");
/// assert!(c.class_weight(0) > c.class_weight(1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainClasses {
    class_of: Vec<usize>,
    class_weights: Vec<f64>,
}

impl DomainClasses {
    /// Builds the class partition for the given per-domain weights.
    ///
    /// `class_threshold` is the paper's γ, used only for the two-class
    /// split; it compares against *relative* weights (`w_j / Σw`).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or all-zero, or γ is not in `(0, 1)`.
    #[must_use]
    pub fn build(weights: &[f64], tiers: TierSpec, class_threshold: f64) -> Self {
        assert!(!weights.is_empty(), "need at least one domain");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        assert!(
            class_threshold > 0.0 && class_threshold < 1.0,
            "class threshold must be in (0,1), got {class_threshold}"
        );
        let k = weights.len();
        let n_classes = tiers.num_classes(k);

        let class_of: Vec<usize> = match tiers {
            TierSpec::PerDomain => {
                // Classes ordered by weight rank: hottest domain is class 0.
                let mut order: Vec<usize> = (0..k).collect();
                order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
                let mut class_of = vec![0; k];
                for (rank, &d) in order.iter().enumerate() {
                    class_of[d] = rank;
                }
                class_of
            }
            TierSpec::Classes(1) => vec![0; k],
            TierSpec::Classes(2) => {
                weights.iter().map(|&w| if w / total > class_threshold { 0 } else { 1 }).collect()
            }
            TierSpec::Classes(_) => {
                // Contiguous rank groups of near-equal size.
                let mut order: Vec<usize> = (0..k).collect();
                order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
                let mut class_of = vec![0; k];
                for (rank, &d) in order.iter().enumerate() {
                    class_of[d] = rank * n_classes / k;
                }
                class_of
            }
        };

        // A degenerate two-class split (nothing above γ, or everything)
        // still needs every class inhabited for the weight averages below;
        // collapse to a single effective class in that case.
        let mut used = vec![false; n_classes];
        for &c in &class_of {
            used[c] = true;
        }
        let (class_of, n_classes) = if used.iter().all(|&u| u) {
            (class_of, n_classes)
        } else {
            // Renumber the inhabited classes densely.
            let mut remap = vec![usize::MAX; n_classes];
            let mut next = 0;
            for c in 0..n_classes {
                if used[c] {
                    remap[c] = next;
                    next += 1;
                }
            }
            (class_of.iter().map(|&c| remap[c]).collect(), next)
        };

        let mut sums = vec![0.0; n_classes];
        let mut counts = vec![0usize; n_classes];
        for (d, &c) in class_of.iter().enumerate() {
            sums[c] += weights[d];
            counts[c] += 1;
        }
        let class_weights = sums.iter().zip(&counts).map(|(s, &c)| s / c as f64).collect();

        DomainClasses { class_of, class_weights }
    }

    /// Number of classes actually produced.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.class_weights.len()
    }

    /// Number of domains.
    #[must_use]
    pub fn num_domains(&self) -> usize {
        self.class_of.len()
    }

    /// The class of domain `d` (0 = hottest class).
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn class_of(&self, d: usize) -> usize {
        self.class_of[d]
    }

    /// The average hidden-load weight of class `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn class_weight(&self, c: usize) -> f64 {
        self.class_weights[c]
    }

    /// All class weights, indexed by class.
    #[must_use]
    pub fn class_weights(&self) -> &[f64] {
        &self.class_weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: [f64; 5] = [10.0, 5.0, 3.0, 1.5, 0.5];

    #[test]
    fn single_class_covers_everything() {
        let c = DomainClasses::build(&W, TierSpec::Classes(1), 0.2);
        assert_eq!(c.num_classes(), 1);
        for d in 0..5 {
            assert_eq!(c.class_of(d), 0);
        }
        assert!((c.class_weight(0) - 4.0).abs() < 1e-12, "mean of W");
    }

    #[test]
    fn two_tier_uses_gamma() {
        // Σ = 20; relative = [.5, .25, .15, .075, .025]; γ = 0.2 → hot = {0, 1}.
        let c = DomainClasses::build(&W, TierSpec::Classes(2), 0.2);
        assert_eq!(c.class_of(0), 0);
        assert_eq!(c.class_of(1), 0);
        assert_eq!(c.class_of(2), 1);
        assert_eq!(c.class_of(4), 1);
        assert!((c.class_weight(0) - 7.5).abs() < 1e-12);
        assert!((c.class_weight(1) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_domain_ranks_by_weight() {
        let w = [3.0, 10.0, 1.0];
        let c = DomainClasses::build(&w, TierSpec::PerDomain, 0.2);
        assert_eq!(c.num_classes(), 3);
        assert_eq!(c.class_of(1), 0, "heaviest domain is class 0");
        assert_eq!(c.class_of(0), 1);
        assert_eq!(c.class_of(2), 2);
        assert_eq!(c.class_weight(0), 10.0);
    }

    #[test]
    fn degenerate_two_tier_collapses() {
        // Uniform weights: nothing exceeds γ = 1/K → single class.
        let w = [1.0; 4];
        let c = DomainClasses::build(&w, TierSpec::Classes(2), 0.25);
        assert_eq!(c.num_classes(), 1);
    }

    #[test]
    fn multi_tier_groups_by_rank() {
        let w = [8.0, 7.0, 6.0, 5.0, 4.0, 3.0];
        let c = DomainClasses::build(&w, TierSpec::Classes(3), 0.2);
        assert_eq!(c.num_classes(), 3);
        assert_eq!(c.class_of(0), 0);
        assert_eq!(c.class_of(1), 0);
        assert_eq!(c.class_of(2), 1);
        assert_eq!(c.class_of(5), 2);
    }

    #[test]
    fn class_weights_are_decreasing_for_ranked_splits() {
        let c = DomainClasses::build(&W, TierSpec::PerDomain, 0.2);
        for i in 1..c.num_classes() {
            assert!(c.class_weight(i) <= c.class_weight(i - 1));
        }
    }

    #[test]
    fn more_classes_than_domains_clamps() {
        let c = DomainClasses::build(&[2.0, 1.0], TierSpec::Classes(10), 0.2);
        assert!(c.num_classes() <= 2);
    }

    #[test]
    #[should_panic(expected = "class threshold")]
    fn bad_gamma_panics() {
        let _ = DomainClasses::build(&W, TierSpec::Classes(2), 1.5);
    }
}
