//! Domain-sharded execution: parallel worlds synchronized at epoch
//! barriers.
//!
//! One simulated site, decomposed by domain (see
//! [`ShardSpec`](crate::ShardSpec)): shard `s` owns every domain `d` with
//! `d % shards == s` — strided, so the Zipf head spreads evenly — together
//! with those domains' clients, its own name-server cache and DNS state
//! for them, and a private replica of the server farm whose capacity is
//! scaled to the shard's client share. Between barriers each shard runs a
//! completely independent event loop over its own calendar queue; at a
//! barrier every `epoch_s` simulated seconds the shards exchange
//!
//! 1. **backlog views** — each shard's per-server normalized backlogs,
//!    summed over the *other* shards in ascending shard order (a direct
//!    sum, never total-minus-own, so the f64 arithmetic is identical no
//!    matter which shard computes it) and installed as the remote addend
//!    of the next epoch's scheduling decisions; and
//! 2. **signals** — alarm/normal transitions a shard's monitors raised,
//!    broadcast so every shard's DNS tracks overload state site-wide.
//!
//! Determinism: each shard is seeded by a pure function of the master
//! seed and its index, and the exchange is plain data in a fixed order,
//! so the decomposition has exactly one sample path. The `parallel` flag
//! only chooses whether the per-epoch `run_epoch` calls are issued from
//! one thread or from `shards` scoped threads — both drive the identical
//! exchange code between barriers, and `tests/shard_determinism.rs` pins
//! the reports byte-identical across the two modes and across shard
//! orderings.

use geodns_nameserver::CacheStats;
use geodns_server::Signal;
use geodns_simcore::stats::{Cdf, Tally};
use geodns_simcore::{split_mix_64, SimTime};
use geodns_workload::ClientDistribution;

use crate::world::RunMetrics;
use crate::{ShardSpec, SimConfig, SimReport, World};

/// Weyl increment separating per-shard seed streams.
const SHARD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The raw statistics one shard tears down into (see `World::harvest`);
/// [`merge_harvests`] folds them into the site-wide [`SimReport`].
pub(crate) struct ShardHarvest {
    pub(crate) max_util_samples: Vec<f64>,
    pub(crate) per_server_util: Vec<Tally>,
    pub(crate) page_response: Tally,
    pub(crate) page_responses: Cdf,
    pub(crate) page_response_hot: Tally,
    pub(crate) page_response_normal: Tally,
    pub(crate) sessions: u64,
    pub(crate) dns_queries: u64,
    pub(crate) client_cache_hits: u64,
    pub(crate) hits_completed: u64,
    pub(crate) hits_total: u64,
    pub(crate) hits_direct: u64,
    pub(crate) alarms: u64,
    pub(crate) ns_stats: CacheStats,
    pub(crate) hits_issued_total: u64,
    pub(crate) hits_served_total: u64,
    pub(crate) hits_failed_total: u64,
    pub(crate) hits_in_flight: u64,
    pub(crate) metrics: RunMetrics,
}

/// Derives shard `s`'s sub-configuration: its strided domain slice as an
/// explicit partition, the farm scaled to its client share, the class
/// threshold rescaled so the γ rule classifies against the *global* rate
/// share, and a seed stream of its own.
fn sub_config(
    cfg: &SimConfig,
    counts: &[usize],
    total_clients: usize,
    s: usize,
    shards: usize,
) -> Result<SimConfig, String> {
    let mut sub_counts = vec![0usize; counts.len()];
    for d in (s..counts.len()).step_by(shards) {
        sub_counts[d] = counts[d];
    }
    let shard_clients: usize = sub_counts.iter().sum();
    if shard_clients == 0 {
        return Err(format!(
            "shard {s} of {shards} owns no clients (its domains are all empty); \
             use fewer shards"
        ));
    }
    let share = shard_clients as f64 / total_clients as f64;

    let mut sub = cfg.clone();
    sub.shard = ShardSpec::default();
    sub.workload.n_clients = shard_clients;
    sub.workload.distribution = ClientDistribution::Explicit(sub_counts);
    // The farm replica serves `share` of the site's clients at `share` of
    // its capacity, so per-server offered load matches the whole site's.
    sub.total_capacity = cfg.total_capacity * share;
    // γ classifies domain rate shares of the *site* total; the shard's
    // local total is `share` of that, so the threshold scales inversely.
    // The clamp below 1.0 only binds when the shard's whole rate share is
    // under γ — every domain it owns is then globally normal, and the
    // clamped rule can misclassify one only if it holds essentially the
    // entire shard (a ≥ (1 − ε) local share), which the strided
    // assignment avoids for any non-degenerate partition.
    sub.class_threshold = Some((cfg.gamma() / share).min(1.0 - f64::EPSILON));
    sub.seed = split_mix_64(cfg.seed ^ (s as u64).wrapping_mul(SHARD_SEED_STRIDE));
    Ok(sub)
}

/// Computes shard `receiver`'s remote backlog view into `remote`: the
/// per-server sum of every *other* shard's exported view, accumulated in
/// ascending shard order so the result is bitwise independent of who
/// computes it.
fn merge_remote(receiver: usize, views: &[Vec<f64>], remote: &mut Vec<f64>) {
    let n_servers = views.first().map_or(0, Vec::len);
    remote.clear();
    remote.resize(n_servers, 0.0);
    for (sender, view) in views.iter().enumerate() {
        if sender == receiver {
            continue;
        }
        for (acc, b) in remote.iter_mut().zip(view) {
            *acc += b;
        }
    }
}

/// One epoch barrier: export all views and staged signals, then give each
/// shard the others' summed backlogs and their signals (senders visited in
/// ascending order, so delivery order is deterministic).
fn exchange(
    worlds: &mut [World],
    views: &mut [Vec<f64>],
    staged: &mut [Vec<(u32, Signal)>],
    remote: &mut Vec<f64>,
) {
    for (w, view) in worlds.iter().zip(views.iter_mut()) {
        w.export_backlogs(view);
    }
    for (w, outbox) in worlds.iter_mut().zip(staged.iter_mut()) {
        w.drain_signal_outbox(outbox);
    }
    for (receiver, world) in worlds.iter_mut().enumerate() {
        merge_remote(receiver, views, remote);
        world.set_remote_backlogs(remote);
        for (sender, signals) in staged.iter().enumerate() {
            if sender == receiver {
                continue;
            }
            for &(server, signal) in signals {
                world.apply_remote_signal(server, signal);
            }
        }
    }
    for outbox in staged.iter_mut() {
        outbox.clear();
    }
}

/// Runs one sharded simulation to completion.
///
/// # Errors
///
/// Returns the first configuration problem found, or a message naming a
/// shard left without clients by the domain partition.
pub(crate) fn run_sharded(cfg: &SimConfig) -> Result<(SimReport, RunMetrics), String> {
    cfg.validate()?;
    let shards = cfg.shard.shards;
    debug_assert!(shards > 1, "single-shard configs take the classic path");

    // Realize the *global* workload once; its per-domain client counts are
    // what the shards slice, so shard populations tile the site exactly.
    let workload = cfg.workload.build()?;
    let counts = workload.partition().counts().to_vec();
    let total_clients: usize = counts.iter().sum();

    let mut worlds: Vec<World> = (0..shards)
        .map(|s| World::new(&sub_config(cfg, &counts, total_clients, s, shards)?))
        .collect::<Result<_, _>>()?;
    for w in &mut worlds {
        w.enable_signal_collection();
        w.start();
    }

    let mut views: Vec<Vec<f64>> = vec![Vec::new(); shards];
    let mut staged: Vec<Vec<(u32, Signal)>> = vec![Vec::new(); shards];
    let mut remote: Vec<f64> = Vec::new();

    // Lockstep epochs: advance every shard to the barrier instant, then
    // exchange. `parallel` only moves the `run_epoch` calls onto scoped
    // threads — shards share no state inside an epoch, and the exchange
    // between barriers is the same single-threaded code either way, so
    // both modes follow one sample path.
    let mut epoch: u64 = 0;
    while worlds.iter().any(|w| !w.drained()) {
        epoch += 1;
        let until = SimTime::from_secs(cfg.shard.epoch_s * epoch as f64);
        if cfg.shard.parallel {
            crossbeam::scope(|scope| {
                for w in worlds.iter_mut() {
                    scope.spawn(move |_| w.run_epoch(until));
                }
            })
            .expect("shard worker panicked");
        } else {
            for w in worlds.iter_mut() {
                w.run_epoch(until);
            }
        }
        exchange(&mut worlds, &mut views, &mut staged, &mut remote);
    }

    let harvests: Vec<ShardHarvest> = worlds.into_iter().map(World::harvest).collect();
    merge_harvests(cfg, harvests)
}

/// Folds the per-shard statistics into the site-wide report, visiting
/// shards in ascending order so every floating-point fold is
/// deterministic. Counters add; tallies and CDFs merge; the
/// max-utilization series concatenates (each sample is one shard's view of
/// its worst replica at a check instant) and re-sorts ascending, exactly
/// as the single-world `finalize` sorts its own.
fn merge_harvests(
    cfg: &SimConfig,
    harvests: Vec<ShardHarvest>,
) -> Result<(SimReport, RunMetrics), String> {
    let plan = cfg.servers.plan(cfg.total_capacity)?;
    let n_servers = plan.num_servers();

    let mut max_util_samples: Vec<f64> = Vec::new();
    let mut per_server_util = vec![Tally::new(); n_servers];
    let mut page_response = Tally::new();
    let mut page_responses = Cdf::new();
    let mut page_response_hot = Tally::new();
    let mut page_response_normal = Tally::new();
    let mut ns_stats = CacheStats::default();
    let mut sessions = 0u64;
    let mut dns_queries = 0u64;
    let mut client_cache_hits = 0u64;
    let mut hits_completed = 0u64;
    let mut hits_total = 0u64;
    let mut hits_direct = 0u64;
    let mut alarms = 0u64;
    let mut hits_issued_total = 0u64;
    let mut hits_served_total = 0u64;
    let mut hits_failed_total = 0u64;
    let mut hits_in_flight = 0u64;
    let mut metrics: Vec<RunMetrics> = Vec::with_capacity(harvests.len());

    for h in &harvests {
        max_util_samples.extend_from_slice(&h.max_util_samples);
        for (acc, t) in per_server_util.iter_mut().zip(&h.per_server_util) {
            acc.merge(t);
        }
        page_response.merge(&h.page_response);
        page_responses.merge(&h.page_responses);
        page_response_hot.merge(&h.page_response_hot);
        page_response_normal.merge(&h.page_response_normal);
        ns_stats.hits += h.ns_stats.hits;
        ns_stats.misses += h.ns_stats.misses;
        sessions += h.sessions;
        dns_queries += h.dns_queries;
        client_cache_hits += h.client_cache_hits;
        hits_completed += h.hits_completed;
        hits_total += h.hits_total;
        hits_direct += h.hits_direct;
        alarms += h.alarms;
        hits_issued_total += h.hits_issued_total;
        hits_served_total += h.hits_served_total;
        hits_failed_total += h.hits_failed_total;
        hits_in_flight += h.hits_in_flight;
        metrics.push(h.metrics);
    }
    max_util_samples.sort_by(|a, b| a.total_cmp(b));

    let span = cfg.duration_s;
    let report = SimReport {
        algorithm: cfg.algorithm.name(),
        seed: cfg.seed,
        heterogeneity_pct: plan.max_difference() * 100.0,
        measured_span_s: span,
        max_util_samples,
        per_server_mean_util: per_server_util.iter().map(Tally::mean).collect(),
        page_response_mean_s: page_response.mean(),
        page_response_p95_s: page_responses.quantile(0.95).unwrap_or(0.0),
        sessions,
        dns_queries,
        address_request_rate: dns_queries as f64 / span,
        dns_control_fraction: if hits_total > 0 {
            hits_direct as f64 / hits_total as f64
        } else {
            0.0
        },
        hits_completed,
        alarms,
        ns_miss_fraction: ns_stats.miss_fraction(),
        page_response_hot_mean_s: page_response_hot.mean(),
        page_response_normal_mean_s: page_response_normal.mean(),
        client_cache_hits,
        hits_failed: 0,
        rebinds: 0,
        per_server_availability: vec![1.0; n_servers],
        time_to_rebalance_mean_s: 0.0,
        hits_issued_total,
        hits_served_total,
        hits_failed_total,
        hits_in_flight,
        timeline: None,
        obs: None,
        latency: None,
    };
    Ok((report, RunMetrics::merged(&metrics)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use geodns_server::HeterogeneityLevel;

    fn sharded(shards: usize, parallel: bool, seed: u64) -> SimConfig {
        let mut cfg = SimConfig::quick(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
        cfg.duration_s = 300.0;
        cfg.warmup_s = 60.0;
        cfg.seed = seed;
        cfg.shard.shards = shards;
        cfg.shard.parallel = parallel;
        cfg
    }

    #[test]
    fn sub_configs_tile_the_population() {
        let cfg = sharded(4, false, 1);
        let counts = cfg.workload.build().unwrap().partition().counts().to_vec();
        let total: usize = counts.iter().sum();
        let subs: Vec<SimConfig> =
            (0..4).map(|s| sub_config(&cfg, &counts, total, s, 4).unwrap()).collect();
        let clients: usize = subs.iter().map(|c| c.workload.n_clients).sum();
        assert_eq!(clients, total);
        let capacity: f64 = subs.iter().map(|c| c.total_capacity).sum();
        assert!((capacity - cfg.total_capacity).abs() < 1e-9);
        // Strided ownership: shard 1 owns exactly the d % 4 == 1 domains.
        if let ClientDistribution::Explicit(sub_counts) = &subs[1].workload.distribution {
            for (d, &c) in sub_counts.iter().enumerate() {
                assert_eq!(c, if d % 4 == 1 { counts[d] } else { 0 }, "domain {d}");
            }
        } else {
            panic!("sub-config must use an explicit partition");
        }
        // Seeds differ per shard and from the master.
        assert_ne!(subs[0].seed, subs[1].seed);
        assert!(subs.iter().all(|s| s.seed != cfg.seed));
    }

    #[test]
    fn remote_view_is_a_direct_sum_over_other_shards() {
        let views = vec![vec![1.0, 2.0], vec![4.0, 8.0], vec![16.0, 32.0]];
        let mut remote = Vec::new();
        merge_remote(1, &views, &mut remote);
        assert_eq!(remote, vec![17.0, 34.0]);
        merge_remote(0, &views, &mut remote);
        assert_eq!(remote, vec![20.0, 40.0]);
    }

    #[test]
    fn sharded_run_produces_a_coherent_report() {
        let (r, m) = run_sharded(&sharded(4, false, 3)).unwrap();
        assert_eq!(m.clients, 500);
        assert!(r.hits_completed > 1000);
        assert!(!r.max_util_samples.is_empty());
        assert!(r.max_util_samples.windows(2).all(|w| w[0] <= w[1]), "sorted ascending");
        assert!(r.mean_util() > 0.0);
        assert!(r.dns_control_fraction > 0.0 && r.dns_control_fraction < 0.5);
        assert_eq!(r.per_server_availability, vec![1.0; 7]);
        assert_eq!(
            r.hits_issued_total,
            r.hits_served_total + r.hits_failed_total + r.hits_in_flight,
            "hit conservation holds across the merge"
        );
    }

    #[test]
    fn parallel_and_sequential_shards_are_byte_identical() {
        let (seq, ms) = run_sharded(&sharded(3, false, 7)).unwrap();
        let (par, mp) = run_sharded(&sharded(3, true, 7)).unwrap();
        assert_eq!(serde_json::to_string(&seq).unwrap(), serde_json::to_string(&par).unwrap());
        assert_eq!(ms, mp);
    }

    #[test]
    fn run_simulation_dispatches_on_shard_count() {
        let cfg = sharded(2, true, 11);
        let direct = run_sharded(&cfg).unwrap().0;
        let dispatched = crate::run_simulation(&cfg).unwrap();
        assert_eq!(direct, dispatched);
    }
}
