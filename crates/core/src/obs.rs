//! Structured observability: probe points, a counters registry, and a
//! bounded JSONL decision tracer.
//!
//! The simulation exposes a set of **probe points** — engine event
//! dispatch, every DNS scheduling decision, name-server cache lookups,
//! server queue transitions, utilization samples, alarm and liveness
//! signals — through the [`Probe`] trait. The world calls the hooks
//! unconditionally; with the default no-op recorder every hook compiles to
//! a couple of `Option` checks, performs **zero allocations** (pinned by
//! `tests/alloc_free.rs`), and leaves the run byte-identical (pinned by
//! `tests/observability.rs`). Recorders observe — they never touch the
//! RNG streams, the event queue, or any model state.
//!
//! Two concrete recorders ship with the crate:
//!
//! * [`ObsCounters`] — an in-memory metrics registry whose
//!   [`ObsSnapshot`] lands in [`SimReport::obs`](crate::SimReport) when
//!   [`ObsConfig::counters`] is set;
//! * [`JsonlTracer`] — a bounded JSON-lines trace writer
//!   ([`geodns_simcore::JsonlSink`]) capturing every DNS decision (with
//!   the candidate set, exclusions, TTL, and a policy state snapshot),
//!   every alarm/liveness signal, NS cache misses, estimator collections,
//!   and the liveness state at measurement start.
//!
//! Both are driven through [`MuxProbe`], the world's single probe value.

use std::io::Write;

use geodns_nameserver::NsLookup;
use geodns_server::Signal;
use geodns_simcore::{JsonlSink, SimTime};
use serde::{Deserialize, Serialize};

use crate::policies::SelectionPolicy;

/// One DNS scheduling decision, borrowed from the scheduler at the instant
/// it is made. Everything a trace consumer needs to replay *why* the
/// answer was what it was.
pub struct DnsDecision<'a> {
    /// Simulation time of the decision.
    pub now: SimTime,
    /// 1-based decision sequence number (the scheduler's query counter).
    pub seq: u64,
    /// The requesting domain.
    pub domain: usize,
    /// The domain's selection class (0 when undifferentiated).
    pub class: usize,
    /// The chosen server.
    pub chosen: usize,
    /// The TTL attached to the answer, seconds.
    pub ttl_s: f64,
    /// The candidate mask the policy saw (liveness ∧ alarm with the
    /// scheduler's fallback chain applied).
    pub candidates: &'a [bool],
    /// Per-server liveness as the DNS believes it (false = crashed).
    pub alive: &'a [bool],
    /// Per-server alarm state (false = alarmed).
    pub unalarmed: &'a [bool],
    /// Per-server normalized backlog at decision time.
    pub backlogs: &'a [f64],
    /// The selection policy, for name and state snapshots.
    pub policy: &'a dyn SelectionPolicy,
}

/// What happened at a server's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueEvent {
    /// A page burst of `hits` requests arrived.
    Arrive {
        /// Number of hits in the burst.
        hits: u64,
    },
    /// One hit completed service.
    Depart,
    /// A crash drained the queue, dropping `dropped` hits.
    Crash {
        /// Number of hits dropped by the drain.
        dropped: usize,
    },
}

/// A recorder of simulation observations.
///
/// Every method has a no-op default, so a recorder implements only the
/// hooks it cares about. Hooks receive borrows and `Copy` data only —
/// calling them allocates nothing. Implementations must not perturb the
/// simulation; they see state, they never own it.
pub trait Probe: Send {
    /// An engine event was dispatched. `kind` is the event's static name,
    /// `pending` the future-event-list size after the pop.
    fn on_event(&mut self, _now: SimTime, _kind: &'static str, _pending: usize) {}

    /// The DNS answered an address request.
    fn on_dns_decision(&mut self, _decision: &DnsDecision<'_>) {}

    /// An alarm/normal/down/up signal arrived at the DNS (after the
    /// feedback delay).
    fn on_signal(&mut self, _now: SimTime, _server: usize, _signal: Signal) {}

    /// A server actually crashed (`up = false`) or completed repair
    /// (`up = true`) — ground truth, not the DNS's delayed view.
    fn on_liveness(&mut self, _now: SimTime, _server: usize, _up: bool) {}

    /// A name-server cache lookup resolved to `outcome`.
    fn on_ns_lookup(&mut self, _now: SimTime, _domain: usize, _outcome: NsLookup) {}

    /// A server's queue changed. `queue_len` is the length after the
    /// change.
    fn on_queue_change(
        &mut self,
        _now: SimTime,
        _server: usize,
        _queue_len: usize,
        _event: QueueEvent,
    ) {
    }

    /// The periodic utilization check sampled `utilization` at a server.
    fn on_util_sample(&mut self, _now: SimTime, _server: usize, _utilization: f64) {}

    /// The DNS collected per-domain hit counts from the servers.
    fn on_collect(&mut self, _now: SimTime, _counts: &[u64]) {}

    /// Warm-up ended and measurement started. `down_since[s]` is `Some`
    /// for every server crashed at this instant — the initial liveness
    /// state trace consumers need before the first transition.
    fn on_measurement_start(&mut self, _now: SimTime, _down_since: &[Option<SimTime>]) {}
}

/// The default recorder: observes nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// Observability configuration: which recorders a run attaches.
///
/// Both recorders are off by default; a default-configured run takes the
/// provably allocation-free no-op path and produces a report
/// byte-identical to one built before this layer existed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Attach the in-memory counters registry; its snapshot lands in
    /// [`SimReport::obs`](crate::SimReport).
    #[serde(default)]
    pub counters: bool,
    /// Write a JSONL decision trace to this path.
    #[serde(default)]
    pub trace_path: Option<String>,
    /// Hard budget on trace records; past it the tracer counts drops
    /// instead of writing (default one million).
    #[serde(default = "default_trace_max_records")]
    pub trace_max_records: u64,
}

fn default_trace_max_records() -> u64 {
    1_000_000
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { counters: false, trace_path: None, trace_max_records: 1_000_000 }
    }
}

impl ObsConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.trace_max_records == 0 {
            return Err("obs.trace_max_records must be > 0".to_string());
        }
        Ok(())
    }
}

/// Count of one engine event kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCount {
    /// The event's static name (`"IssuePage"`, `"Departure"`, …).
    pub kind: String,
    /// How many were dispatched.
    pub count: u64,
}

/// Snapshot of the counters registry, attached to the report as
/// [`SimReport::obs`](crate::SimReport) when [`ObsConfig::counters`] is
/// set. Counts cover the **whole run** (warm-up included) — they are
/// observability, not paper statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Engine events dispatched, by kind, in first-seen order.
    pub events: Vec<EventCount>,
    /// DNS scheduling decisions made.
    pub dns_decisions: u64,
    /// Decisions whose candidate mask excluded at least one server
    /// (alarm or outage constrained the choice).
    pub dns_decisions_constrained: u64,
    /// Mean TTL attached to the answers, seconds (0 when no decisions).
    pub ttl_mean_s: f64,
    /// Smallest TTL attached, seconds (0 when no decisions).
    pub ttl_min_s: f64,
    /// Largest TTL attached, seconds (0 when no decisions).
    pub ttl_max_s: f64,
    /// Alarm signals that reached the DNS.
    pub signals_alarm: u64,
    /// Normal (alarm-clear) signals that reached the DNS.
    pub signals_normal: u64,
    /// Down (outage) signals that reached the DNS.
    pub signals_down: u64,
    /// Up (repair) signals that reached the DNS.
    pub signals_up: u64,
    /// Actual server crashes (ground truth, not the delayed signal).
    pub crashes: u64,
    /// Actual repair completions.
    pub repairs: u64,
    /// NS cache lookups answered from a live entry.
    pub ns_hits: u64,
    /// NS cache lookups that missed because the domain was never cached.
    pub ns_misses_cold: u64,
    /// NS cache lookups that missed because the entry's TTL had expired.
    pub ns_misses_expired: u64,
    /// Hits enqueued at servers.
    pub queue_arrivals: u64,
    /// Hits that completed service.
    pub queue_departures: u64,
    /// Hits dropped from queues by crashes.
    pub queue_crash_drops: u64,
    /// Per-server utilization samples taken.
    pub util_samples: u64,
    /// Estimator collections ingested.
    pub collects: u64,
    /// Trace records written by the JSONL tracer (0 without one).
    pub trace_records_written: u64,
    /// Trace records dropped past the budget (0 without a tracer).
    pub trace_records_dropped: u64,
    /// Classifier/policy class desyncs the policy repaired: decisions (or
    /// feedback events) that arrived with a class index beyond the
    /// policy's per-class state. Should stay 0; a non-zero value means a
    /// rebuild raced a decision. Serde-defaulted so pre-existing snapshots
    /// still deserialize.
    #[serde(default)]
    pub policy_class_desyncs: u64,
}

/// The in-memory counters registry.
///
/// Hot-path hooks (`on_dns_decision`, `on_queue_change`, …) only bump
/// integers and fold min/max — no allocation. The per-kind event table
/// allocates once per distinct kind (the vocabulary is a dozen strings),
/// which settles to zero in steady state.
#[derive(Debug, Default)]
pub struct ObsCounters {
    events: Vec<(&'static str, u64)>,
    dns_decisions: u64,
    dns_decisions_constrained: u64,
    ttl_sum_s: f64,
    ttl_min_s: f64,
    ttl_max_s: f64,
    signals_alarm: u64,
    signals_normal: u64,
    signals_down: u64,
    signals_up: u64,
    crashes: u64,
    repairs: u64,
    ns_hits: u64,
    ns_misses_cold: u64,
    ns_misses_expired: u64,
    queue_arrivals: u64,
    queue_departures: u64,
    queue_crash_drops: u64,
    util_samples: u64,
    collects: u64,
    policy_class_desyncs: u64,
}

impl ObsCounters {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        ObsCounters { ttl_min_s: f64::INFINITY, ..ObsCounters::default() }
    }

    /// Freezes the registry into a serializable snapshot, folding in the
    /// tracer's written/dropped tallies.
    #[must_use]
    pub fn snapshot(&self, trace_records_written: u64, trace_records_dropped: u64) -> ObsSnapshot {
        ObsSnapshot {
            events: self
                .events
                .iter()
                .map(|&(kind, count)| EventCount { kind: kind.to_string(), count })
                .collect(),
            dns_decisions: self.dns_decisions,
            dns_decisions_constrained: self.dns_decisions_constrained,
            ttl_mean_s: if self.dns_decisions > 0 {
                self.ttl_sum_s / self.dns_decisions as f64
            } else {
                0.0
            },
            ttl_min_s: if self.dns_decisions > 0 { self.ttl_min_s } else { 0.0 },
            ttl_max_s: self.ttl_max_s,
            signals_alarm: self.signals_alarm,
            signals_normal: self.signals_normal,
            signals_down: self.signals_down,
            signals_up: self.signals_up,
            crashes: self.crashes,
            repairs: self.repairs,
            ns_hits: self.ns_hits,
            ns_misses_cold: self.ns_misses_cold,
            ns_misses_expired: self.ns_misses_expired,
            queue_arrivals: self.queue_arrivals,
            queue_departures: self.queue_departures,
            queue_crash_drops: self.queue_crash_drops,
            util_samples: self.util_samples,
            collects: self.collects,
            trace_records_written,
            trace_records_dropped,
            policy_class_desyncs: self.policy_class_desyncs,
        }
    }
}

impl Probe for ObsCounters {
    fn on_event(&mut self, _now: SimTime, kind: &'static str, _pending: usize) {
        // Linear scan over a dozen static names beats hashing at this size
        // and, crucially, stays allocation-free once every kind was seen.
        for entry in &mut self.events {
            if std::ptr::eq(entry.0, kind) || entry.0 == kind {
                entry.1 += 1;
                return;
            }
        }
        self.events.push((kind, 1));
    }

    fn on_dns_decision(&mut self, decision: &DnsDecision<'_>) {
        self.dns_decisions += 1;
        if decision.candidates.iter().any(|&c| !c) {
            self.dns_decisions_constrained += 1;
        }
        self.ttl_sum_s += decision.ttl_s;
        self.ttl_min_s = self.ttl_min_s.min(decision.ttl_s);
        self.ttl_max_s = self.ttl_max_s.max(decision.ttl_s);
        // The policy keeps the authoritative running count (feedback
        // events can desync too, between decisions); fold in its latest.
        self.policy_class_desyncs = self.policy_class_desyncs.max(decision.policy.class_desyncs());
    }

    fn on_signal(&mut self, _now: SimTime, _server: usize, signal: Signal) {
        match signal {
            Signal::Alarm => self.signals_alarm += 1,
            Signal::Normal => self.signals_normal += 1,
            Signal::Down => self.signals_down += 1,
            Signal::Up => self.signals_up += 1,
        }
    }

    fn on_liveness(&mut self, _now: SimTime, _server: usize, up: bool) {
        if up {
            self.repairs += 1;
        } else {
            self.crashes += 1;
        }
    }

    fn on_ns_lookup(&mut self, _now: SimTime, _domain: usize, outcome: NsLookup) {
        match outcome {
            NsLookup::Hit { .. } => self.ns_hits += 1,
            NsLookup::MissCold => self.ns_misses_cold += 1,
            NsLookup::MissExpired => self.ns_misses_expired += 1,
        }
    }

    fn on_queue_change(
        &mut self,
        _now: SimTime,
        _server: usize,
        _queue_len: usize,
        event: QueueEvent,
    ) {
        match event {
            QueueEvent::Arrive { hits } => self.queue_arrivals += hits,
            QueueEvent::Depart => self.queue_departures += 1,
            QueueEvent::Crash { dropped } => self.queue_crash_drops += dropped as u64,
        }
    }

    fn on_util_sample(&mut self, _now: SimTime, _server: usize, _utilization: f64) {
        self.util_samples += 1;
    }

    fn on_collect(&mut self, _now: SimTime, _counts: &[u64]) {
        self.collects += 1;
    }
}

// --- JSONL trace records. Owned structs (the derive stub does not take
// lifetime parameters); the tracer runs on the *enabled* path where
// per-record allocation is acceptable. Every record leads with `ev` so a
// consumer can dispatch on the first field. ---

#[derive(Serialize)]
struct DecisionRecord {
    ev: &'static str,
    t_s: f64,
    seq: u64,
    domain: usize,
    class: usize,
    server: usize,
    ttl_s: f64,
    policy: &'static str,
    /// Servers the candidate mask excluded from this decision.
    excluded: Vec<usize>,
    /// Servers the DNS believed crashed at decision time.
    dns_dead: Vec<usize>,
    /// Servers alarmed at decision time.
    alarmed: Vec<usize>,
    backlogs: Vec<f64>,
    /// Opaque policy state (pointer positions, accumulated load, …).
    state: Vec<f64>,
}

#[derive(Serialize)]
struct SignalRecord {
    ev: &'static str,
    t_s: f64,
    server: usize,
    signal: &'static str,
}

#[derive(Serialize)]
struct LivenessRecord {
    ev: &'static str,
    t_s: f64,
    server: usize,
    up: bool,
}

#[derive(Serialize)]
struct NsMissRecord {
    ev: &'static str,
    t_s: f64,
    domain: usize,
    cold: bool,
}

#[derive(Serialize)]
struct CollectRecord {
    ev: &'static str,
    t_s: f64,
    counts: Vec<u64>,
}

#[derive(Serialize)]
struct MeasurementStartRecord {
    ev: &'static str,
    t_s: f64,
    /// Servers already down when measurement started.
    down: Vec<usize>,
}

/// The JSONL decision tracer: streams one record per DNS decision, signal,
/// liveness transition, NS cache miss, and estimator collection into a
/// bounded [`JsonlSink`].
///
/// High-volume per-hit traffic (queue arrivals/departures, utilization
/// samples, raw engine events) is deliberately **not** traced — it would
/// crowd scheduling decisions out of the record budget; the counters
/// registry covers it in aggregate.
pub struct JsonlTracer {
    sink: JsonlSink,
    scratch_state: Vec<f64>,
}

impl JsonlTracer {
    /// Creates a tracer writing to `path` with a budget of `max_records`
    /// lines.
    ///
    /// # Errors
    ///
    /// Returns a message if the file cannot be created.
    pub fn create(path: &str, max_records: u64) -> Result<Self, String> {
        let sink = JsonlSink::create(path, max_records)
            .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
        Ok(JsonlTracer { sink, scratch_state: Vec::new() })
    }

    /// Wraps an arbitrary writer (tests).
    #[must_use]
    pub fn from_writer(writer: Box<dyn Write + Send>, max_records: u64) -> Self {
        JsonlTracer { sink: JsonlSink::from_writer(writer, max_records), scratch_state: Vec::new() }
    }

    /// `(written, dropped)` record counts.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.sink.written(), self.sink.dropped())
    }

    /// Flushes buffered records.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.sink.flush()
    }
}

fn false_indices(mask: &[bool]) -> Vec<usize> {
    mask.iter().enumerate().filter(|&(_, &v)| !v).map(|(i, _)| i).collect()
}

impl Probe for JsonlTracer {
    fn on_dns_decision(&mut self, decision: &DnsDecision<'_>) {
        self.scratch_state.clear();
        decision.policy.state_snapshot(decision.now, &mut self.scratch_state);
        self.sink.push(&DecisionRecord {
            ev: "dns_decision",
            t_s: decision.now.as_secs(),
            seq: decision.seq,
            domain: decision.domain,
            class: decision.class,
            server: decision.chosen,
            ttl_s: decision.ttl_s,
            policy: decision.policy.name(),
            excluded: false_indices(decision.candidates),
            dns_dead: false_indices(decision.alive),
            alarmed: false_indices(decision.unalarmed),
            backlogs: decision.backlogs.to_vec(),
            state: std::mem::take(&mut self.scratch_state),
        });
    }

    fn on_signal(&mut self, now: SimTime, server: usize, signal: Signal) {
        let name = match signal {
            Signal::Alarm => "alarm",
            Signal::Normal => "normal",
            Signal::Down => "down",
            Signal::Up => "up",
        };
        self.sink.push(&SignalRecord { ev: "signal", t_s: now.as_secs(), server, signal: name });
    }

    fn on_liveness(&mut self, now: SimTime, server: usize, up: bool) {
        self.sink.push(&LivenessRecord { ev: "liveness", t_s: now.as_secs(), server, up });
    }

    fn on_ns_lookup(&mut self, now: SimTime, domain: usize, outcome: NsLookup) {
        let cold = match outcome {
            NsLookup::Hit { .. } => return, // hits are volume; counters cover them
            NsLookup::MissCold => true,
            NsLookup::MissExpired => false,
        };
        self.sink.push(&NsMissRecord { ev: "ns_miss", t_s: now.as_secs(), domain, cold });
    }

    fn on_collect(&mut self, now: SimTime, counts: &[u64]) {
        self.sink.push(&CollectRecord {
            ev: "collect",
            t_s: now.as_secs(),
            counts: counts.to_vec(),
        });
    }

    fn on_measurement_start(&mut self, now: SimTime, down_since: &[Option<SimTime>]) {
        let down: Vec<usize> =
            down_since.iter().enumerate().filter(|&(_, d)| d.is_some()).map(|(s, _)| s).collect();
        self.sink.push(&MeasurementStartRecord {
            ev: "measurement_start",
            t_s: now.as_secs(),
            down,
        });
    }
}

/// The world's single probe value: fans every hook out to the recorders
/// the configuration attached. With both recorders off every hook is two
/// `None` checks — the disabled path the allocation-freedom and
/// byte-identity tests pin.
#[derive(Default)]
pub struct MuxProbe {
    counters: Option<ObsCounters>,
    tracer: Option<JsonlTracer>,
}

impl MuxProbe {
    /// Builds the probe the configuration asks for.
    ///
    /// # Errors
    ///
    /// Returns a message if the trace file cannot be created.
    pub fn from_config(cfg: &ObsConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(MuxProbe {
            counters: cfg.counters.then(ObsCounters::new),
            tracer: match &cfg.trace_path {
                Some(path) => Some(JsonlTracer::create(path, cfg.trace_max_records)?),
                None => None,
            },
        })
    }

    /// A probe with only the given tracer attached (tests, custom sinks).
    #[must_use]
    pub fn with_tracer(tracer: JsonlTracer) -> Self {
        MuxProbe { counters: None, tracer: Some(tracer) }
    }

    /// Whether any recorder is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.counters.is_some() || self.tracer.is_some()
    }

    /// Flushes the tracer (if any) and freezes the counters (if enabled)
    /// into the report's `obs` snapshot.
    pub fn finish(&mut self) -> Option<ObsSnapshot> {
        let (written, dropped) = self.tracer.as_ref().map_or((0, 0), JsonlTracer::stats);
        if let Some(tracer) = &mut self.tracer {
            // Flush failures surface as dropped-record counts, not errors:
            // the trace is an observer, never the run's failure mode.
            let _ = tracer.flush();
        }
        self.counters.as_ref().map(|c| c.snapshot(written, dropped))
    }
}

macro_rules! fan_out {
    ($self:ident . $hook:ident ( $($arg:expr),* )) => {
        if let Some(c) = $self.counters.as_mut() {
            c.$hook($($arg),*);
        }
        if let Some(t) = $self.tracer.as_mut() {
            t.$hook($($arg),*);
        }
    };
}

impl Probe for MuxProbe {
    fn on_event(&mut self, now: SimTime, kind: &'static str, pending: usize) {
        fan_out!(self.on_event(now, kind, pending));
    }

    fn on_dns_decision(&mut self, decision: &DnsDecision<'_>) {
        fan_out!(self.on_dns_decision(decision));
    }

    fn on_signal(&mut self, now: SimTime, server: usize, signal: Signal) {
        fan_out!(self.on_signal(now, server, signal));
    }

    fn on_liveness(&mut self, now: SimTime, server: usize, up: bool) {
        fan_out!(self.on_liveness(now, server, up));
    }

    fn on_ns_lookup(&mut self, now: SimTime, domain: usize, outcome: NsLookup) {
        fan_out!(self.on_ns_lookup(now, domain, outcome));
    }

    fn on_queue_change(&mut self, now: SimTime, server: usize, queue_len: usize, ev: QueueEvent) {
        fan_out!(self.on_queue_change(now, server, queue_len, ev));
    }

    fn on_util_sample(&mut self, now: SimTime, server: usize, utilization: f64) {
        fan_out!(self.on_util_sample(now, server, utilization));
    }

    fn on_collect(&mut self, now: SimTime, counts: &[u64]) {
        fan_out!(self.on_collect(now, counts));
    }

    fn on_measurement_start(&mut self, now: SimTime, down_since: &[Option<SimTime>]) {
        fan_out!(self.on_measurement_start(now, down_since));
    }
}

impl std::fmt::Debug for MuxProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxProbe")
            .field("counters", &self.counters.is_some())
            .field("tracer", &self.tracer.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::PolicyKind;
    use std::sync::{Arc, Mutex};

    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn decision<'a>(
        candidates: &'a [bool],
        alive: &'a [bool],
        unalarmed: &'a [bool],
        backlogs: &'a [f64],
        policy: &'a dyn SelectionPolicy,
    ) -> DnsDecision<'a> {
        DnsDecision {
            now: SimTime::from_secs(10.0),
            seq: 1,
            domain: 3,
            class: 0,
            chosen: 2,
            ttl_s: 240.0,
            candidates,
            alive,
            unalarmed,
            backlogs,
            policy,
        }
    }

    #[test]
    fn counters_accumulate() {
        let policy = PolicyKind::Rr.build(3, 1, 1);
        let mut c = ObsCounters::new();
        c.on_event(SimTime::ZERO, "IssuePage", 5);
        c.on_event(SimTime::ZERO, "IssuePage", 4);
        c.on_event(SimTime::ZERO, "Departure", 3);
        let all = [true, true, true];
        let constrained = [true, false, true];
        let backlogs = [0.0; 3];
        c.on_dns_decision(&decision(&all, &all, &all, &backlogs, policy.as_ref()));
        c.on_dns_decision(&decision(&constrained, &all, &all, &backlogs, policy.as_ref()));
        c.on_signal(SimTime::ZERO, 0, Signal::Alarm);
        c.on_liveness(SimTime::ZERO, 0, false);
        c.on_liveness(SimTime::ZERO, 0, true);
        c.on_ns_lookup(SimTime::ZERO, 0, NsLookup::MissCold);
        c.on_ns_lookup(SimTime::ZERO, 0, NsLookup::Hit { server: 1, expiry: SimTime::ZERO });
        c.on_queue_change(SimTime::ZERO, 0, 4, QueueEvent::Arrive { hits: 4 });
        c.on_queue_change(SimTime::ZERO, 0, 3, QueueEvent::Depart);
        c.on_queue_change(SimTime::ZERO, 0, 0, QueueEvent::Crash { dropped: 3 });
        let snap = c.snapshot(7, 1);
        assert_eq!(
            snap.events,
            vec![
                EventCount { kind: "IssuePage".into(), count: 2 },
                EventCount { kind: "Departure".into(), count: 1 },
            ]
        );
        assert_eq!(snap.dns_decisions, 2);
        assert_eq!(snap.dns_decisions_constrained, 1);
        assert_eq!(snap.ttl_mean_s, 240.0);
        assert_eq!(snap.signals_alarm, 1);
        assert_eq!(snap.crashes, 1);
        assert_eq!(snap.repairs, 1);
        assert_eq!(snap.ns_hits, 1);
        assert_eq!(snap.ns_misses_cold, 1);
        assert_eq!(snap.queue_arrivals, 4);
        assert_eq!(snap.queue_crash_drops, 3);
        assert_eq!(snap.trace_records_written, 7);
        assert_eq!(snap.trace_records_dropped, 1);
    }

    #[test]
    fn empty_counters_snapshot_is_zeroed() {
        let snap = ObsCounters::new().snapshot(0, 0);
        assert_eq!(snap.ttl_mean_s, 0.0);
        assert_eq!(snap.ttl_min_s, 0.0);
        assert_eq!(snap.ttl_max_s, 0.0);
        assert_eq!(snap.policy_class_desyncs, 0);
        assert!(snap.events.is_empty());
    }

    #[test]
    fn counters_surface_policy_class_desyncs() {
        use crate::policies::SchedCtx;
        use geodns_simcore::RngStreams;

        let mut policy = PolicyKind::Rr2.build(3, 1, 1);
        let weights = [1.0];
        let caps = [1.0, 1.0, 1.0];
        let abs = [10.0, 10.0, 10.0];
        let all = [true, true, true];
        let backlogs = [0.0; 3];
        let ctx = SchedCtx {
            domain: 0,
            class: 2, // beyond the single-class table: a counted desync
            weights: &weights,
            relative_caps: &caps,
            capacities: &abs,
            available: &all,
            backlogs: &backlogs,
            now: SimTime::ZERO,
        };
        let mut rng = RngStreams::new(1).stream("obs");
        policy.select(&ctx, &mut rng);

        let mut c = ObsCounters::new();
        c.on_dns_decision(&decision(&all, &all, &all, &backlogs, policy.as_ref()));
        assert_eq!(c.snapshot(0, 0).policy_class_desyncs, 1);
    }

    #[test]
    fn tracer_writes_decision_records() {
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let mut tracer = JsonlTracer::from_writer(Box::new(buf.clone()), 100);
        let policy = PolicyKind::Dal.build(3, 1, 1);
        let all = [true, true, true];
        let candidates = [true, false, true];
        let backlogs = [0.5, 0.0, 0.25];
        tracer.on_dns_decision(&decision(&candidates, &all, &all, &backlogs, policy.as_ref()));
        tracer.on_liveness(SimTime::from_secs(12.0), 1, false);
        tracer.on_ns_lookup(SimTime::from_secs(13.0), 2, NsLookup::MissExpired);
        tracer.on_ns_lookup(SimTime::ZERO, 0, NsLookup::Hit { server: 0, expiry: SimTime::ZERO });
        tracer.flush().unwrap();
        assert_eq!(tracer.stats(), (3, 0), "NS hits are not traced");
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"ev\":\"dns_decision\""));
        assert!(lines[0].contains("\"excluded\":[1]"));
        assert!(lines[0].contains("\"policy\":\"DAL\""));
        assert!(lines[1].contains("\"ev\":\"liveness\""));
        assert!(lines[2].contains("\"ev\":\"ns_miss\""));
        assert!(lines[2].contains("\"cold\":false"));
    }

    #[test]
    fn obs_config_validates_budget() {
        let mut cfg = ObsConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.trace_max_records = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn mux_probe_disabled_by_default() {
        let probe = MuxProbe::from_config(&ObsConfig::default()).unwrap();
        assert!(!probe.is_enabled());
    }
}
