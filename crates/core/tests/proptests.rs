//! Property-based tests for the scheduling core.

use geodns_core::{
    Algorithm, DnsScheduler, DomainClasses, EstimatorKind, HiddenLoadEstimator, PolicyKind,
    SchedCtx, TierSpec, TtlKind, TtlScheme,
};
use geodns_server::CapacityPlan;
use geodns_simcore::{RngStreams, SimTime};
use proptest::prelude::*;

fn arb_weights() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1f64..100.0, 2..40)
}

fn arb_caps() -> impl Strategy<Value = Vec<f64>> {
    // Decreasing relative capacities starting at 1.0.
    prop::collection::vec(0.1f64..1.0, 1..12).prop_map(|mut tail| {
        tail.sort_by(|a, b| b.total_cmp(a));
        let mut caps = vec![1.0];
        caps.extend(tail);
        caps
    })
}

proptest! {
    /// Classification is total and class weights average the members.
    #[test]
    fn classes_cover_all_domains(weights in arb_weights(), tiers in 1usize..10) {
        let c = DomainClasses::build(&weights, TierSpec::Classes(tiers), 0.5 / weights.len() as f64);
        prop_assert_eq!(c.num_domains(), weights.len());
        for d in 0..weights.len() {
            prop_assert!(c.class_of(d) < c.num_classes());
        }
        for cls in 0..c.num_classes() {
            prop_assert!(c.class_weight(cls) > 0.0);
        }
    }

    /// Per-domain classes rank strictly by weight.
    #[test]
    fn per_domain_classes_rank(weights in arb_weights()) {
        let c = DomainClasses::build(&weights, TierSpec::PerDomain, 0.1);
        prop_assert_eq!(c.num_classes(), weights.len());
        // The hottest domain must be class 0.
        let hottest = weights
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .unwrap();
        prop_assert_eq!(c.class_of(hottest), 0);
    }

    /// Rate normalization holds for every adaptive kind, weight vector and
    /// capacity layout: the expected address rate equals K/TTL_const.
    #[test]
    fn normalization_is_universal(
        weights in arb_weights(),
        caps in arb_caps(),
        tiers in 1usize..6,
        server_scaled in any::<bool>(),
        ttl_const in 30.0f64..1000.0,
    ) {
        let spec = TierSpec::Classes(tiers);
        let classes = DomainClasses::build(&weights, spec, 0.5 / weights.len() as f64);
        let kind = TtlKind::Adaptive { tiers: spec, server_scaled };
        let scheme = TtlScheme::build(kind, &classes, &weights, &caps, ttl_const, true);
        let rate: f64 = scheme
            .expected_ttls(&classes)
            .iter()
            .map(|t| 1.0 / t)
            .sum();
        let target = weights.len() as f64 / ttl_const;
        prop_assert!((rate - target).abs() < 1e-6 * target, "rate {rate} vs {target}");
    }

    /// TTLs are positive, finite, and inversely ordered with class weight.
    #[test]
    fn ttl_table_is_sane(weights in arb_weights(), caps in arb_caps()) {
        let classes = DomainClasses::build(&weights, TierSpec::PerDomain, 0.1);
        let kind = TtlKind::Adaptive { tiers: TierSpec::PerDomain, server_scaled: true };
        let scheme = TtlScheme::build(kind, &classes, &weights, &caps, 240.0, true);
        for cls in 0..scheme.num_classes() {
            for s in 0..scheme.num_servers() {
                let t = scheme.ttl(cls, s);
                prop_assert!(t.is_finite() && t > 0.0);
            }
        }
        // Heavier class ⇒ shorter TTL on the same server.
        for cls in 1..scheme.num_classes() {
            if classes.class_weight(cls) < classes.class_weight(cls - 1) {
                prop_assert!(scheme.ttl(cls, 0) >= scheme.ttl(cls - 1, 0));
            }
        }
    }

    /// Every policy returns a valid, eligible server for arbitrary masks.
    #[test]
    fn policies_respect_availability(
        caps in arb_caps(),
        mask_bits in any::<u16>(),
        seed in 0u64..500,
        domain in 0usize..20,
    ) {
        let n = caps.len();
        let available: Vec<bool> = (0..n).map(|i| mask_bits & (1 << (i % 16)) != 0).collect();
        let weights: Vec<f64> = (0..20).map(|i| 100.0 / (i + 1) as f64).collect();
        let absolute: Vec<f64> = caps.iter().map(|a| a * 100.0).collect();
        let backlogs = vec![0.0; n];
        let any_available = available.iter().any(|&a| a);
        let mut rng = RngStreams::new(seed).stream("prop");

        for kind in [
            PolicyKind::Rr,
            PolicyKind::Rr2,
            PolicyKind::Prr,
            PolicyKind::Prr2,
            PolicyKind::Dal,
            PolicyKind::Mrl,
            PolicyKind::Random,
            PolicyKind::WeightedRandom,
            PolicyKind::LeastLoaded,
            PolicyKind::RttBand { band_ms: 400 },
        ] {
            let mut policy = kind.build(n, 2, 20);
            let ctx = SchedCtx {
                domain,
                class: domain % 2,
                weights: &weights,
                relative_caps: &caps,
                capacities: &absolute,
                available: &available,
                backlogs: &backlogs,
                now: SimTime::ZERO,
            };
            let s = policy.select(&ctx, &mut rng);
            prop_assert!(s < n, "{}: out of range", kind.paper_name());
            if any_available {
                prop_assert!(available[s], "{} chose an alarmed server", kind.paper_name());
            }
            policy.assigned(s, 0.1, 240.0, SimTime::ZERO);
        }
    }

    /// The scheduler always answers with a valid server and positive TTL,
    /// whatever the estimator has converged to.
    #[test]
    fn scheduler_answers_are_valid(
        seed in 0u64..200,
        counts in prop::collection::vec(0u64..5000, 20),
    ) {
        let plan = CapacityPlan::from_level(geodns_server::HeterogeneityLevel::H50, 500.0);
        let est = HiddenLoadEstimator::new(
            EstimatorKind::Measured { collect_interval_s: 8.0, ema_alpha: 1.0 },
            &[1.0; 20],
        );
        let rng = RngStreams::new(seed).stream("dns");
        let mut dns = DnsScheduler::new(Algorithm::drr2_ttl_s_k(), &plan, est, 0.05, 240.0, true, rng);
        dns.ingest(&counts, 8.0);
        let backlogs = vec![0.0; 7];
        for d in 0..20 {
            let (s, ttl) = dns.resolve(d, SimTime::ZERO, &backlogs);
            prop_assert!(s < 7);
            prop_assert!(ttl.is_finite() && ttl > 0.0);
        }
    }

    /// RTT-band never hands a domain to an alarmed server, whatever the
    /// geography, band width, availability mask, or assignment history.
    #[test]
    fn rtt_band_never_selects_alarmed(
        caps in arb_caps(),
        mask_bits in any::<u16>(),
        seed in 0u64..500,
        domain in 0usize..20,
        rtts in prop::collection::vec(0.002f64..0.4, 12),
        band_ms in 0u32..2000,
    ) {
        let n = caps.len();
        let available: Vec<bool> = (0..n).map(|i| mask_bits & (1 << (i % 16)) != 0).collect();
        let any_available = available.iter().any(|&a| a);
        let weights: Vec<f64> = (0..20).map(|i| 100.0 / (i + 1) as f64).collect();
        let absolute: Vec<f64> = caps.iter().map(|a| a * 100.0).collect();
        let backlogs = vec![0.0; n];
        let mut rng = RngStreams::new(seed).stream("prop");
        let mut policy = PolicyKind::RttBand { band_ms }.build(n, 2, 20);
        for s in 0..n {
            policy.observe_rtt(domain, s, rtts[s % rtts.len()]);
        }
        let ctx = SchedCtx {
            domain,
            class: domain % 2,
            weights: &weights,
            relative_caps: &caps,
            capacities: &absolute,
            available: &available,
            backlogs: &backlogs,
            now: SimTime::ZERO,
        };
        for _ in 0..20 {
            let s = policy.select(&ctx, &mut rng);
            prop_assert!(s < n, "RTT-band: out of range");
            if any_available {
                prop_assert!(available[s], "RTT-band chose an alarmed server");
            }
            policy.assigned(s, 0.1, 240.0, SimTime::ZERO);
        }
    }

    /// Under a stationary geography with one server strictly inside the band
    /// and everyone else strictly outside it, RTT-band converges to (and
    /// stays on) the nearest capable server.
    #[test]
    fn rtt_band_converges_to_nearest(
        caps in arb_caps(),
        seed in 0u64..200,
        domain in 0usize..20,
        band_ms in 0u32..500,
        near_pick in 0usize..12,
    ) {
        let n = caps.len();
        let near = near_pick % n;
        let weights: Vec<f64> = (0..20).map(|i| 100.0 / (i + 1) as f64).collect();
        let absolute: Vec<f64> = caps.iter().map(|a| a * 100.0).collect();
        let available = vec![true; n];
        let backlogs = vec![0.0; n];
        let mut rng = RngStreams::new(seed).stream("prop");
        let mut policy = PolicyKind::RttBand { band_ms }.build(n, 4, 20);
        // Near server at 10 ms; everyone else strictly above the band top.
        let far_s = (10.0 + f64::from(band_ms) + 50.0) / 1000.0;
        for s in 0..n {
            let rtt = if s == near { 0.010 } else { far_s };
            for _ in 0..8 {
                policy.observe_rtt(domain, s, rtt);
            }
        }
        let ctx = SchedCtx {
            domain,
            class: domain % 4,
            weights: &weights,
            relative_caps: &caps,
            capacities: &absolute,
            available: &available,
            backlogs: &backlogs,
            now: SimTime::ZERO,
        };
        for _ in 0..50 {
            let s = policy.select(&ctx, &mut rng);
            prop_assert_eq!(s, near, "stationary RTTs must pin the nearest capable server");
            policy.assigned(s, 0.1, 240.0, SimTime::ZERO);
        }
    }

    /// Algorithm names are stable and non-empty for every combination.
    #[test]
    fn algorithm_names_total(tiers in 1usize..25, scaled in any::<bool>()) {
        for policy in [PolicyKind::Rr, PolicyKind::Rr2, PolicyKind::Prr, PolicyKind::Prr2] {
            let a = Algorithm::new(
                policy,
                TtlKind::Adaptive { tiers: TierSpec::Classes(tiers), server_scaled: scaled },
            );
            prop_assert!(!a.name().is_empty());
        }
    }
}
